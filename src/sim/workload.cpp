#include "src/sim/workload.hpp"

#include <memory>

#include "src/platform/rng.hpp"

namespace lockin {
namespace {

// Per-run driver state shared by the thread loops.
struct Driver {
  SimEngine engine;
  std::unique_ptr<SimMachine> machine;
  std::vector<std::unique_ptr<SimLock>> locks;
  std::vector<std::unique_ptr<Xoshiro256>> rngs;
  const WorkloadConfig* config = nullptr;
  SimTime end_time = 0;
  std::uint64_t total_acquires = 0;
  LatencyHistogram latency;
  static constexpr SimTime kNoPendingRequest = ~0ULL;
  std::vector<SimTime> pending_request_at;  // per-thread outstanding Acquire

  bool Finished() const { return engine.now() >= end_time; }

  std::uint64_t CsCycles(int tid) {
    const std::uint64_t cs = config->cs_cycles;
    if (!config->randomize_cs || cs == 0) {
      return cs;
    }
    return cs / 2 + rngs[tid]->NextBelow(cs);
  }

  SimLock& PickLock(int tid) {
    if (locks.size() == 1) {
      return *locks[0];
    }
    return *locks[rngs[tid]->NextBelow(locks.size())];
  }

  // Optional off-CPU wait (I/O) at the end of an iteration, then loop.
  void AfterThink(int tid) {
    const std::uint64_t blocked = config->blocked_cycles;
    if (blocked == 0 || Finished()) {
      ThreadLoop(tid);
      return;
    }
    machine->Block(tid, ActivityState::kSleeping);
    machine->NotifyWhenRunning(tid, [this, tid] { ThreadLoop(tid); });
    machine->Unblock(tid, blocked);
  }

  void ThreadLoop(int tid) {
    if (Finished()) {
      return;  // stop issuing; the engine drains naturally
    }
    SimLock& lock = PickLock(tid);
    const SimTime requested_at = engine.now();
    pending_request_at[tid] = requested_at;
    lock.Acquire(tid, [this, tid, &lock, requested_at] {
      pending_request_at[tid] = kNoPendingRequest;
      latency.Record(engine.now() - requested_at);
      machine->RunFor(tid, CsCycles(tid), ActivityState::kCritical, [this, tid, &lock] {
        total_acquires++;
        lock.Release(tid, [this, tid] {
          const std::uint64_t think = config->non_cs_cycles;
          if (think == 0) {
            AfterThink(tid);
          } else {
            machine->RunFor(tid, think, ActivityState::kWorking,
                            [this, tid] { AfterThink(tid); });
          }
        });
      });
    });
  }
};

// Builds machine, locks and threads for `config` and schedules the thread
// loops. `driver.config` must already point at the (possibly phase-mutated)
// live configuration.
void SetupDriver(Driver& driver, const std::string& lock_name, const WorkloadConfig& config,
                 const WorkloadEnv& env) {
  driver.machine =
      std::make_unique<SimMachine>(&driver.engine, env.topology, env.power, env.sim);

  for (int i = 0; i < config.locks; ++i) {
    SimLockOptions options = env.lock_options;
    options.rng_seed = config.seed * 7919 + static_cast<std::uint64_t>(i);
    // The adaptive profiler must estimate energy with the same calibration
    // the machine charges Joules with.
    options.power = env.power;
    driver.locks.push_back(MakeSimLock(lock_name, driver.machine.get(), options));
  }

  driver.pending_request_at.assign(static_cast<std::size_t>(config.threads),
                                   Driver::kNoPendingRequest);
  for (int t = 0; t < config.threads; ++t) {
    driver.rngs.push_back(
        std::make_unique<Xoshiro256>(config.seed * 1315423911ULL + static_cast<std::uint64_t>(t)));
    driver.machine->AddThread();
  }
  for (int t = 0; t < config.threads; ++t) {
    driver.machine->Start(t);
    const int tid = t;
    // Stagger arrivals a little so all threads do not collide on cycle 0.
    driver.engine.Schedule(static_cast<SimTime>(t) * 97, [&driver, tid] {
      driver.ThreadLoop(tid);
    });
  }
}

}  // namespace

WorkloadResult RunLockWorkload(const std::string& lock_name, const WorkloadConfig& config,
                               const WorkloadEnv& env) {
  Driver driver;
  driver.config = &config;
  driver.end_time = config.duration_cycles;
  SetupDriver(driver, lock_name, config, env);

  driver.engine.RunUntil(config.duration_cycles);

  if (config.record_censored_waits) {
    for (int t = 0; t < config.threads; ++t) {
      const SimTime requested_at = driver.pending_request_at[t];
      if (requested_at != Driver::kNoPendingRequest &&
          requested_at < config.duration_cycles) {
        driver.latency.Record(config.duration_cycles - requested_at);
      }
    }
  }

  WorkloadResult result;
  result.lock_name = lock_name;
  const SimMachine::EnergyTotals energy = driver.machine->Energy();
  result.seconds = static_cast<double>(config.duration_cycles) / env.sim.cycles_per_second;
  result.total_acquires = driver.total_acquires;
  result.throughput_per_s = static_cast<double>(driver.total_acquires) / result.seconds;
  result.average_watts = energy.average_watts();
  result.package_joules = energy.package_joules;
  result.dram_joules = energy.dram_joules;
  const double joules = energy.total_joules();
  result.tpp = joules > 0 ? static_cast<double>(driver.total_acquires) / joules : 0.0;
  result.acquire_latency_cycles = driver.latency;
  result.engine_events = driver.engine.executed_events();
  result.kernel_time_share = driver.machine->ActiveShare(ActivityState::kKernel);
  result.spin_time_share = driver.machine->ActiveShare(ActivityState::kSpinMbar) +
                           driver.machine->ActiveShare(ActivityState::kSpinPause) +
                           driver.machine->ActiveShare(ActivityState::kSpinLocal) +
                           driver.machine->ActiveShare(ActivityState::kSpinGlobal);
  for (const auto& lock : driver.locks) {
    const SimLockStats& s = lock->stats();
    result.lock_stats.acquires += s.acquires;
    result.lock_stats.spin_handovers += s.spin_handovers;
    result.lock_stats.futex_handovers += s.futex_handovers;
    result.lock_stats.timeout_handovers += s.timeout_handovers;
    result.lock_stats.wake_skips += s.wake_skips;
    result.lock_stats.resleeps += s.resleeps;
    if (const SimFutex::Stats* fs = lock->futex_stats()) {
      result.futex_stats.sleep_calls += fs->sleep_calls;
      result.futex_stats.sleep_misses += fs->sleep_misses;
      result.futex_stats.wake_calls += fs->wake_calls;
      result.futex_stats.threads_woken += fs->threads_woken;
      result.futex_stats.timeouts += fs->timeouts;
      result.futex_stats.deep_sleeps += fs->deep_sleeps;
    }
  }
  return result;
}

PhasedWorkloadResult RunPhasedLockWorkload(const std::string& lock_name,
                                           const WorkloadConfig& base,
                                           const std::vector<WorkloadPhase>& phases,
                                           const WorkloadEnv& env) {
  PhasedWorkloadResult result;
  result.lock_name = lock_name;
  if (phases.empty()) {
    return result;
  }

  // Live configuration the driver reads; mutated in place at boundaries so
  // the locks (and their adaptation state) persist across phases.
  WorkloadConfig active = base;
  auto apply_phase = [&active](const WorkloadPhase& phase) {
    active.cs_cycles = phase.cs_cycles;
    active.non_cs_cycles = phase.non_cs_cycles;
    active.blocked_cycles = phase.blocked_cycles;
    active.randomize_cs = phase.randomize_cs;
  };
  apply_phase(phases.front());

  std::uint64_t total_cycles = 0;
  for (const WorkloadPhase& phase : phases) {
    total_cycles += phase.duration_cycles;
  }
  active.duration_cycles = total_cycles;

  Driver driver;
  driver.config = &active;
  driver.end_time = total_cycles;
  SetupDriver(driver, lock_name, active, env);

  std::uint64_t closed_acquires = 0;
  double closed_joules = 0.0;
  auto close_phase = [&](std::uint64_t phase_cycles) {
    const SimMachine::EnergyTotals energy = driver.machine->Energy();
    PhaseResult phase;
    phase.acquires = driver.total_acquires - closed_acquires;
    phase.seconds = static_cast<double>(phase_cycles) / env.sim.cycles_per_second;
    phase.joules = energy.total_joules() - closed_joules;
    phase.watts = phase.seconds > 0 ? phase.joules / phase.seconds : 0.0;
    phase.throughput_per_s =
        phase.seconds > 0 ? static_cast<double>(phase.acquires) / phase.seconds : 0.0;
    phase.tpp = phase.joules > 0 ? static_cast<double>(phase.acquires) / phase.joules : 0.0;
    result.phases.push_back(phase);
    closed_acquires = driver.total_acquires;
    closed_joules = energy.total_joules();
  };

  std::uint64_t elapsed = 0;
  for (std::size_t i = 0; i + 1 < phases.size(); ++i) {
    elapsed += phases[i].duration_cycles;
    const std::uint64_t phase_cycles = phases[i].duration_cycles;
    const WorkloadPhase next = phases[i + 1];
    driver.engine.Schedule(elapsed, [&, phase_cycles, next] {
      close_phase(phase_cycles);
      apply_phase(next);
    });
  }

  driver.engine.RunUntil(total_cycles);
  close_phase(phases.back().duration_cycles);

  result.total_acquires = driver.total_acquires;
  result.seconds = static_cast<double>(total_cycles) / env.sim.cycles_per_second;
  result.engine_events = driver.engine.executed_events();
  result.joules = driver.machine->Energy().total_joules();
  result.tpp = result.joules > 0
                   ? static_cast<double>(driver.total_acquires) / result.joules
                   : 0.0;
  return result;
}

}  // namespace lockin
