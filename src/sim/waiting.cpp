#include "src/sim/waiting.hpp"

#include <algorithm>
#include <deque>
#include <memory>

#include "src/sim/futex_model.hpp"
#include "src/sim/machine.hpp"
#include "src/stats/summary.hpp"

namespace lockin {

PowerBreakdownPoint PowerBreakdown(const PowerModel& model, int threads, VfSetting vf) {
  std::vector<ActivityState> states(model.topology().total_contexts(),
                                    ActivityState::kInactive);
  for (int i = 0; i < threads && i < static_cast<int>(states.size()); ++i) {
    states[i] = ActivityState::kWorking;
  }
  const std::vector<VfSetting> vfs(states.size(), vf);
  const PowerModel::Breakdown b = model.ComponentWatts(states, vfs);
  return PowerBreakdownPoint{threads, b.total(), b.package_w, b.cores_w, b.dram_w};
}

double WaitingCpi(ActivityState state) {
  // Paper, sections 4.1-4.2: global spinning's atomic takes ~530 cycles;
  // local spinning retires a load per cycle; pause raises CPI to 4.6; the
  // memory barrier serializes on the load's retirement (tens of cycles);
  // mwait executes no instructions while blocked.
  switch (state) {
    case ActivityState::kSpinGlobal:
      return 530.0;
    case ActivityState::kSpinLocal:
    case ActivityState::kSpinDvfsMin:
      return 1.0;
    case ActivityState::kSpinPause:
      return 4.6;
    case ActivityState::kSpinMbar:
      return 28.0;
    case ActivityState::kMwait:
      return 0.0;
    case ActivityState::kSleeping:
    case ActivityState::kDeepSleep:
    case ActivityState::kInactive:
      return 0.0;
    default:
      return 1.0;
  }
}

double WaitingPowerWatts(const PowerModel& model, int threads, ActivityState state) {
  std::vector<ActivityState> states(model.topology().total_contexts(),
                                    ActivityState::kInactive);
  for (int i = 0; i < threads && i < static_cast<int>(states.size()); ++i) {
    states[i] = state;
  }
  return model.TotalWatts(states);
}

// ---------------------------------------------------------------------------
// Figure 6: futex latency microbenchmark.
// ---------------------------------------------------------------------------
FutexLatencyPoint MeasureFutexLatency(std::uint64_t delay_cycles, int rounds) {
  SimEngine engine;
  SimMachine machine(&engine, Topology::PaperXeon(), PowerParams::PaperXeon(),
                     SimParams::PaperXeon());
  SimFutex futex(&machine);

  const int sleeper = machine.AddThread();
  const int waker = machine.AddThread();
  machine.Start(sleeper);
  machine.Start(waker);

  struct RoundState {
    SimTime wake_invoked_at = 0;
    double wake_call = 0;
    double turnaround = 0;
    bool wake_done = false;
    bool sleeper_awake = false;
  };

  std::vector<double> wake_samples;
  std::vector<double> turnaround_samples;
  int rounds_left = rounds;
  auto round_state = std::make_shared<RoundState>();

  // Forward declaration via std::function for the recursive round driver.
  std::function<void()> start_round;

  auto maybe_finish_round = [&]() {
    if (!round_state->wake_done || !round_state->sleeper_awake) {
      return;
    }
    wake_samples.push_back(round_state->wake_call);
    turnaround_samples.push_back(round_state->turnaround);
    if (--rounds_left > 0) {
      engine.Schedule(20000, [&] { start_round(); });
    }
  };

  start_round = [&]() {
    *round_state = RoundState{};
    // Sleeper invokes the sleep call now; waker invokes wake after `delay`.
    futex.Sleep(sleeper, 0, [&](SimFutex::WakeReason) {
      round_state->turnaround =
          static_cast<double>(engine.now() - round_state->wake_invoked_at);
      round_state->sleeper_awake = true;
      maybe_finish_round();
    });
    machine.RunFor(waker, delay_cycles, ActivityState::kWorking, [&] {
      round_state->wake_invoked_at = engine.now();
      futex.Wake(waker, 1, [&] {
        round_state->wake_call =
            static_cast<double>(engine.now() - round_state->wake_invoked_at);
        round_state->wake_done = true;
        maybe_finish_round();
      });
    });
  };

  start_round();
  engine.RunAll();

  FutexLatencyPoint point;
  point.delay_cycles = delay_cycles;
  point.wake_call_cycles = Median(wake_samples);
  point.turnaround_cycles = Median(turnaround_samples);
  return point;
}

// ---------------------------------------------------------------------------
// Section 4.4 table: power vs wake-up period.
// ---------------------------------------------------------------------------
SleepPowerPoint MeasureSleepPower(std::uint64_t period_cycles, std::uint64_t duration_cycles) {
  SimEngine engine;
  SimMachine machine(&engine, Topology::PaperXeon(), PowerParams::PaperXeon(),
                     SimParams::PaperXeon());
  SimFutex futex(&machine);

  const int sleeper = machine.AddThread();
  const int waker = machine.AddThread();
  machine.Start(sleeper);
  machine.Start(waker);

  std::function<void()> sleep_loop;
  std::function<void()> wake_loop;
  sleep_loop = [&]() {
    if (engine.now() >= duration_cycles) {
      return;
    }
    futex.Sleep(sleeper, 0, [&](SimFutex::WakeReason) { sleep_loop(); });
  };
  wake_loop = [&]() {
    if (engine.now() >= duration_cycles) {
      return;
    }
    // The paper's microbenchmark spins out the period between wake-ups
    // (a delay loop, not memory-intensive work).
    machine.RunFor(waker, period_cycles, ActivityState::kSpinPause, [&] {
      futex.Wake(waker, 1, [&] { wake_loop(); });
    });
  };
  sleep_loop();
  wake_loop();
  engine.RunUntil(duration_cycles);

  SleepPowerPoint point;
  point.period_cycles = period_cycles;
  point.watts = machine.Energy().average_watts();
  const SimFutex::Stats& stats = futex.stats();
  point.sleep_miss_ratio =
      stats.sleep_calls > 0
          ? static_cast<double>(stats.sleep_misses) / static_cast<double>(stats.sleep_calls)
          : 0.0;
  return point;
}

// ---------------------------------------------------------------------------
// Figure 7: sleep / spin / spin-then-sleep token passing.
// ---------------------------------------------------------------------------
namespace {

struct SsTDriver {
  SimEngine engine;
  std::unique_ptr<SimMachine> machine;
  std::unique_ptr<SimFutex> futex;
  std::uint64_t spin_quota = 0;
  std::uint64_t duration = 0;
  int threads = 0;
  std::uint64_t handovers = 0;
  std::vector<std::uint64_t> quota_left;
  int available_partner = -1;  // the second active thread, when idle
  bool token_stalled = false;  // token parked until a replacement wakes

  bool Done() const { return engine.now() >= duration; }

  std::uint64_t SpinHandoverCost(int active_threads) const {
    const SimParams& p = machine->params();
    std::uint64_t cost = 2 * p.line_transfer_cycles;
    if (active_threads > 2) {
      cost += p.burst_per_waiter_cycles * static_cast<std::uint64_t>(active_threads - 2);
    }
    return cost;
  }

  // Pure-futex chain ("sleep" series): the holder wakes the next thread and
  // goes to sleep; exactly one thread is active at a time.
  void FutexChainStep(int holder) {
    if (Done()) {
      return;
    }
    handovers++;
    futex->Wake(holder, 1, [this, holder] {
      if (Done()) {
        return;
      }
      futex->Sleep(holder, 0, [this, holder](SimFutex::WakeReason) {
        FutexChainStep(holder);
      });
    });
  }

  // Spin-only series: all threads busy-wait; token rotates round-robin.
  void SpinOnlyStep(int holder) {
    if (Done()) {
      return;
    }
    handovers++;
    const int next = (holder + 1) % threads;
    machine->RunFor(holder, SpinHandoverCost(threads), ActivityState::kSpinMbar,
                    [this, holder, next] {
                      machine->SetActivity(holder, ActivityState::kSpinMbar);
                      SpinOnlyStep(next);
                    });
  }

  // A previously sleeping thread is running again: it takes a stalled
  // token, parks as the available partner, or -- if it was woken spuriously
  // (a sleep miss from the other swapper's concurrent wake, or a partner
  // slot already filled) -- goes straight back to sleep.
  void OnSwappedIn(int tid) {
    if (Done()) {
      return;
    }
    if (token_stalled) {
      token_stalled = false;
      machine->SetActivity(tid, ActivityState::kSpinMbar);
      SsStep(tid);
      return;
    }
    if (available_partner < 0) {
      machine->SetActivity(tid, ActivityState::kSpinMbar);
      available_partner = tid;
      return;
    }
    futex->Sleep(tid, 0, [this, tid](SimFutex::WakeReason) { OnSwappedIn(tid); });
  }

  // ss-T: two active threads hand over in user space; after T handovers a
  // thread wakes a sleeper to replace itself and goes to sleep.
  void SsStep(int holder) {
    if (Done()) {
      return;
    }
    if (quota_left[holder] == 0) {
      // Quota exhausted: wake a replacement, hand the token to the partner
      // (or stall until the replacement arrives), and go to sleep.
      quota_left[holder] = spin_quota;
      handovers++;
      futex->Wake(holder, 1, [this, holder] {
        const int partner = available_partner;
        available_partner = -1;
        futex->Sleep(holder, 0,
                     [this, holder](SimFutex::WakeReason) { OnSwappedIn(holder); });
        if (partner >= 0) {
          machine->RunFor(partner, SpinHandoverCost(2), ActivityState::kSpinMbar,
                          [this, partner] { SsStep(partner); });
        } else {
          token_stalled = true;  // resumed by the next OnSwappedIn
        }
      });
      return;
    }
    const int partner = available_partner;
    if (partner < 0) {
      // No partner yet (replacement still waking): spin in place without
      // consuming quota -- these are not lock handovers.
      machine->RunFor(holder, SpinHandoverCost(2), ActivityState::kSpinMbar,
                      [this, holder] { SsStep(holder); });
      return;
    }
    quota_left[holder]--;
    handovers++;
    available_partner = holder;
    machine->RunFor(holder, SpinHandoverCost(2), ActivityState::kSpinMbar,
                    [this, partner] { SsStep(partner); });
  }
};

}  // namespace

SpinThenSleepPoint MeasureSpinThenSleep(int threads, std::uint64_t spin_quota,
                                        std::uint64_t duration_cycles) {
  SsTDriver driver;
  driver.machine = std::make_unique<SimMachine>(&driver.engine, Topology::PaperXeon(),
                                                PowerParams::PaperXeon(), SimParams::PaperXeon());
  driver.futex = std::make_unique<SimFutex>(driver.machine.get());
  driver.spin_quota = spin_quota;
  driver.duration = duration_cycles;
  driver.threads = threads;
  driver.quota_left.assign(static_cast<std::size_t>(threads),
                           spin_quota == kSpinOnly ? 0 : spin_quota);

  for (int t = 0; t < threads; ++t) {
    driver.machine->AddThread();
  }
  for (int t = 0; t < threads; ++t) {
    driver.machine->Start(t);
  }

  if (spin_quota == kSpinOnly || threads == 1) {
    for (int t = 0; t < threads; ++t) {
      driver.machine->SetActivity(t, ActivityState::kSpinMbar);
    }
    driver.SpinOnlyStep(0);
  } else if (spin_quota == 0) {
    // "sleep" series: all but thread 0 start asleep.
    for (int t = 1; t < threads; ++t) {
      driver.futex->Sleep(t, 0, [&driver, t](SimFutex::WakeReason) {
        driver.FutexChainStep(t);
      });
    }
    // Let every sleep call clear the kernel bucket before the chain starts,
    // otherwise the first wake would hit an entering sleeper (sleep miss)
    // and fork the chain.
    const std::uint64_t warmup = static_cast<std::uint64_t>(threads) * 3000 + 10000;
    driver.engine.Schedule(warmup, [&driver] { driver.FutexChainStep(0); });
  } else {
    // ss-T: threads 0 and 1 active, rest asleep.
    for (int t = 2; t < threads; ++t) {
      driver.futex->Sleep(t, 0,
                          [&driver, t](SimFutex::WakeReason) { driver.OnSwappedIn(t); });
    }
    driver.available_partner = threads > 1 ? 1 : -1;
    if (threads > 1) {
      driver.machine->SetActivity(1, ActivityState::kSpinMbar);
    }
    const std::uint64_t warmup = static_cast<std::uint64_t>(threads) * 3000 + 10000;
    driver.engine.Schedule(warmup, [&driver] { driver.SsStep(0); });
  }

  driver.engine.RunUntil(duration_cycles);

  SpinThenSleepPoint point;
  point.threads = threads;
  point.spin_quota = spin_quota;
  point.watts = driver.machine->Energy().average_watts();
  point.handovers_per_s = static_cast<double>(driver.handovers) /
                          (static_cast<double>(duration_cycles) /
                           SimParams::PaperXeon().cycles_per_second);
  return point;
}

}  // namespace lockin
