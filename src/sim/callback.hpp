// Fixed-capacity move-only callables for the simulator's hot path.
//
// Every simulated cycle of work is an event callback, so the cost of
// storing and moving callbacks *is* the simulator's overhead. std::function
// heap-allocates its closure and re-allocates on every copy; InlineFunction
// stores the closure inline in a fixed-size buffer instead, so scheduling
// an event costs a couple of stores and no allocator traffic. Closures
// larger than the buffer still work (they spill to the heap) but the spill
// is counted by SimEngine's pool stats, so a regression that re-introduces
// per-event allocation is visible in bench_sim_perf.
//
// The capacity ceiling is a design constraint, not a limitation: code that
// wants to thread a continuation through several layers must not wrap
// callbacks in ever-fatter closures (each wrap adds capture overhead) but
// park the continuation in a per-thread slot (SlotVector below) and pass a
// thin {object, tid} closure instead. That is what keeps the event core
// allocation-free in steady state.
#ifndef SRC_SIM_CALLBACK_HPP_
#define SRC_SIM_CALLBACK_HPP_

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace lockin {

template <typename Signature, std::size_t Capacity>
class InlineFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT: implicit like std::function

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& fn) {  // NOLINT: implicit like std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= Capacity && alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
      ops_ = &kInlineOps<Fn>;
    } else {
      // Spill: closure too large for the inline buffer. Functional but
      // allocates; SimEngine counts these so benches can flag regressions.
      *reinterpret_cast<Fn**>(buf_) = new Fn(std::forward<F>(fn));
      ops_ = &kHeapOps<Fn>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { MoveFrom(other); }
  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      MoveFrom(other);
    }
    return *this;
  }
  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;
  ~InlineFunction() { reset(); }

  R operator()(Args... args) { return ops_->invoke(buf_, std::forward<Args>(args)...); }

  explicit operator bool() const { return ops_ != nullptr; }
  bool heap_allocated() const { return ops_ != nullptr && ops_->heap; }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    R (*invoke)(void* buf, Args&&... args);
    // Move-constructs dst's storage from src's and destroys src's.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* buf);
    bool heap;
  };

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* buf, Args&&... args) -> R {
        return (*static_cast<Fn*>(buf))(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) {
        Fn* from = static_cast<Fn*>(src);
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* buf) { static_cast<Fn*>(buf)->~Fn(); },
      false,
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* buf, Args&&... args) -> R {
        return (**reinterpret_cast<Fn**>(buf))(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) {
        *reinterpret_cast<Fn**>(dst) = *reinterpret_cast<Fn**>(src);
      },
      [](void* buf) { delete *reinterpret_cast<Fn**>(buf); },
      true,
  };

  void MoveFrom(InlineFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[Capacity];
};

// The engine's event callback. Sized to hold the fattest hot-path closure
// in the simulator (SimFutex::Sleep's kernel-entry continuation, which
// carries a WakeCallback inline) with headroom.
using SimCallback = InlineFunction<void(), 128>;

// Per-thread preallocated continuation slots, indexed by tid. The lock and
// futex models used to keep a per-acquire std::function map (hash + heap
// alloc per acquire); a thread only ever has one continuation outstanding
// per layer, so a flat tid-indexed slot array is enough. Grows to the max
// tid once, then stays allocation-free.
template <typename Fn>
class SlotVector {
 public:
  void Put(int tid, Fn fn) {
    if (static_cast<std::size_t>(tid) >= slots_.size()) {
      slots_.resize(static_cast<std::size_t>(tid) + 1);
    }
    slots_[static_cast<std::size_t>(tid)] = std::move(fn);
  }

  // Moves the continuation out, leaving the slot empty. Callers must move
  // out *before* invoking: the continuation may re-enter and refill it.
  Fn Take(int tid) { return std::move(slots_[static_cast<std::size_t>(tid)]); }

  bool Has(int tid) const {
    return static_cast<std::size_t>(tid) < slots_.size() &&
           static_cast<bool>(slots_[static_cast<std::size_t>(tid)]);
  }

 private:
  std::vector<Fn> slots_;
};

}  // namespace lockin

#endif  // SRC_SIM_CALLBACK_HPP_
