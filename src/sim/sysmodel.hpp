// System workload models for the paper's section 6 experiments
// (Figures 13, 14, 15; system configurations from Table 3).
//
// The paper swaps pthread locks inside six real systems. What determines
// the outcome is each system's *synchronization profile*: how many locks,
// how long the critical sections are, how much private work separates
// acquisitions, and whether the system oversubscribes threads to hardware
// contexts. Each SystemWorkload below encodes that profile (derived from
// the paper's own characterization in section 6) and is run through the
// simulator with MUTEX / TICKET / MUTEXEE, like the paper's Figure 13-15
// matrix. The companion *native* mini-systems live in src/systems.
#ifndef SRC_SIM_SYSMODEL_HPP_
#define SRC_SIM_SYSMODEL_HPP_

#include <string>
#include <vector>

#include "src/sim/workload.hpp"

namespace lockin {

struct SystemWorkload {
  std::string system;   // "HamsterDB", "Kyoto", ...
  std::string config;   // "WT", "CACHE", "64 CON", ...
  WorkloadConfig workload;
  // Paper-reported normalized values (vs MUTEX) for EXPERIMENTS.md
  // comparison; 0 when the paper does not report the cell.
  double paper_throughput_ticket = 0;
  double paper_throughput_mutexee = 0;
  double paper_tpp_ticket = 0;
  double paper_tpp_mutexee = 0;
  double paper_tail_ticket = 0;
  double paper_tail_mutexee = 0;
};

// The 17 system configurations of Table 3 / Figures 13-14. The tail-latency
// figure (15) covers the 11 configurations the paper plots.
std::vector<SystemWorkload> PaperSystemWorkloads();

struct SystemResult {
  SystemWorkload spec;
  WorkloadResult mutex_result;
  WorkloadResult ticket_result;
  WorkloadResult mutexee_result;

  double ThroughputRatioTicket() const {
    return Ratio(ticket_result.throughput_per_s, mutex_result.throughput_per_s);
  }
  double ThroughputRatioMutexee() const {
    return Ratio(mutexee_result.throughput_per_s, mutex_result.throughput_per_s);
  }
  double TppRatioTicket() const { return Ratio(ticket_result.tpp, mutex_result.tpp); }
  double TppRatioMutexee() const { return Ratio(mutexee_result.tpp, mutex_result.tpp); }
  // The paper's Figure 15 reports the 99th percentile of *request* latency;
  // one request crosses several lock acquisitions, so the acquire-level
  // percentile that corresponds to it sits deeper in the tail. We use the
  // 99.9th acquire percentile (see EXPERIMENTS.md).
  double TailRatioTicket() const {
    return Ratio(static_cast<double>(ticket_result.acquire_latency_cycles.P999()),
                 static_cast<double>(mutex_result.acquire_latency_cycles.P999()));
  }
  double TailRatioMutexee() const {
    return Ratio(static_cast<double>(mutexee_result.acquire_latency_cycles.P999()),
                 static_cast<double>(mutex_result.acquire_latency_cycles.P999()));
  }
  // Worst-case acquire latency ratio: exposes MUTEXEE's starved sleepers
  // even when they are too few to move a fixed percentile.
  double MaxTailRatioMutexee() const {
    return Ratio(static_cast<double>(mutexee_result.acquire_latency_cycles.max()),
                 static_cast<double>(mutex_result.acquire_latency_cycles.max()));
  }

 private:
  static double Ratio(double a, double b) { return b > 0 ? a / b : 0.0; }
};

// Runs one system configuration under the three locks of Figures 13-15.
SystemResult RunSystemWorkload(const SystemWorkload& spec);

}  // namespace lockin

#endif  // SRC_SIM_SYSMODEL_HPP_
