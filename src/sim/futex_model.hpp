// Simulated Linux futex.
//
// Models the costs measured in section 4.3 of the paper:
//   * a sleep call costs ~2100 cycles of kernel time before the context is
//     released to the OS;
//   * a wake call costs ~2700 cycles on the waker's critical path;
//   * the woken thread runs only after the full turnaround (>= 7000
//     cycles): wake call + idle-to-active switch + scheduling;
//   * sleeps longer than ~600K cycles drop the context into a deep idle
//     state whose exit adds tens of thousands of cycles (Figure 6's
//     "explosion");
//   * sleep and wake calls on the same address serialize on a kernel
//     hash-bucket lock, so concurrent futex traffic queues (the SQLite
//     kernel-time pathology in section 6).
//
// A wake that arrives while a sleeper is still executing its sleep call
// (i.e., before it blocked) is a "sleep miss": the sleeper returns
// immediately, wasting both calls -- the behaviour behind the section 4.4
// table where periods shorter than the sleep latency save no power.
#ifndef SRC_SIM_FUTEX_MODEL_HPP_
#define SRC_SIM_FUTEX_MODEL_HPP_

#include <cstdint>
#include <deque>

#include "src/platform/rng.hpp"
#include "src/sim/callback.hpp"
#include "src/sim/machine.hpp"

namespace lockin {

class SimFutex {
 public:
  // Why a woken sleeper resumed.
  enum class WakeReason { kSignalled, kTimedOut, kSleepMiss };

  // Wake continuations ride inside engine-event closures, so they are
  // deliberately smaller than SimCallback (see callback.hpp).
  using WakeCallback = InlineFunction<void(WakeReason), 64>;

  explicit SimFutex(SimMachine* machine, std::uint64_t seed = 17);

  // The calling thread (must be running) sleeps on this futex. The sequence
  // is: kernel entry (bucket queueing + sleep-call cycles), block, and
  // later `on_wake(reason)` once the thread is *running* again.
  // timeout_cycles == 0 means no timeout.
  void Sleep(int tid, std::uint64_t timeout_cycles, WakeCallback on_wake);

  // The calling thread wakes up to `count` sleepers; `on_done` fires when
  // the wake call returns (it is on the waker's critical path).
  void Wake(int tid, int count, SimCallback on_done);

  // Sleepers currently blocked (not counting ones still entering the kernel).
  int sleeper_count() const { return static_cast<int>(sleepers_.size()); }

  // Threads inside Sleep() that have not blocked yet.
  int entering_count() const { return entering_; }

  struct Stats {
    std::uint64_t sleep_calls = 0;
    std::uint64_t sleep_misses = 0;
    std::uint64_t wake_calls = 0;
    std::uint64_t threads_woken = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t deep_sleeps = 0;  // wakes that paid the deep-idle penalty
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }

 private:
  struct Sleeper {
    int tid;
    SimTime slept_at;
    EventId timeout_event;
    WakeCallback on_wake;
  };

  // Kernel hash-bucket lock: returns the queueing delay for an operation
  // that holds the bucket for `hold_cycles`, advancing the busy horizon.
  std::uint64_t BucketDelay(std::uint64_t hold_cycles);

  // Computes the wake->running delay for a sleeper that blocked at
  // `slept_at` (idle-to-active + scheduling, deep-idle penalty included).
  std::uint64_t TurnaroundTail(SimTime slept_at);

  void DeliverWake(Sleeper sleeper, WakeReason reason, std::uint64_t extra_delay = 0);

  SimMachine* machine_;
  // Scheduling noise on the wake->running tail (+-10%). Without it the
  // deterministic engine phase-locks woken threads into the lock's free
  // windows, hiding the turnaround latency entirely -- an artifact real
  // schedulers never exhibit.
  Xoshiro256 jitter_rng_;
  std::deque<Sleeper> sleepers_;
  // Per-tid continuation for an in-flight Wake call (the on_done must not
  // ride inside the kernel-entry closure -- see callback.hpp).
  SlotVector<SimCallback> wake_done_;
  int entering_ = 0;
  // Wakes that arrived while the target was still entering the kernel.
  int pending_misses_ = 0;
  SimTime bucket_busy_until_ = 0;
  Stats stats_;
};

}  // namespace lockin

#endif  // SRC_SIM_FUTEX_MODEL_HPP_
