// Discrete-event simulation engine.
//
// A minimal calendar: events are (time, callback) pairs executed in
// timestamp order (FIFO among equal timestamps). The machine model, futex
// model and lock models all schedule against one engine, so a whole
// benchmark run is a deterministic event sequence -- repeatable bit-for-bit
// across runs, which the tests rely on.
#ifndef SRC_SIM_ENGINE_HPP_
#define SRC_SIM_ENGINE_HPP_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace lockin {

using SimTime = std::uint64_t;  // cycles
using EventId = std::uint64_t;

class SimEngine {
 public:
  SimEngine() = default;

  SimTime now() const { return now_; }

  // Schedules `fn` to run `delay` cycles from now. Returns a handle that
  // Cancel() accepts.
  EventId Schedule(SimTime delay, std::function<void()> fn);

  // Cancels a pending event; no-op if it already ran or was cancelled.
  void Cancel(EventId id);

  // Runs events until the queue drains or `until` is passed (events with
  // timestamp > until stay queued and now() stops at `until`).
  void RunUntil(SimTime until);

  // Runs until the queue is empty.
  void RunAll();

  std::size_t pending_events() const { return live_.size(); }
  std::uint64_t executed_events() const { return executed_; }

  // Cancelled events still occupying queue memory (drained lazily as the
  // clock reaches them). Bounded by the queue size; cancelling an event
  // that already ran must not grow it.
  std::size_t cancel_backlog() const { return queue_.size() - live_.size(); }

 private:
  struct Event {
    SimTime time;
    EventId id;
    std::function<void()> fn;

    bool operator>(const Event& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return id > other.id;  // FIFO among equal timestamps
    }
  };

  SimTime now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  // Queued ids that have not been cancelled; a queued id absent from this
  // set is a cancellation tombstone, dropped when the queue reaches it.
  std::unordered_set<EventId> live_;
};

}  // namespace lockin

#endif  // SRC_SIM_ENGINE_HPP_
