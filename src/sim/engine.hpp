// Discrete-event simulation engine.
//
// A minimal calendar: events are (time, callback) pairs executed in
// timestamp order (FIFO among equal timestamps). The machine model, futex
// model and lock models all schedule against one engine, so a whole
// benchmark run is a deterministic event sequence -- repeatable bit-for-bit
// across runs, which the tests rely on.
//
// The event core is built for throughput (simulator wall-clock is this
// repo's iteration speed -- every figure bench and ctest runs on it):
//
//   * Events live in slab-allocated slots with the callback stored inline
//     (InlineFunction), recycled through a free list: zero allocator
//     traffic per event in steady state (pool_stats() proves it).
//   * The ready queue is a 4-ary heap of 16-byte POD entries -- shallower
//     than a binary heap and cache-friendlier than sifting fat elements,
//     which suits the benches' near-monotonic schedule pattern.
//   * Handles are generation-tagged: Cancel() is O(1), a stale handle
//     (event already ran, slot since recycled) is detected by generation
//     mismatch, and a cancelled pending event becomes a tombstone reclaimed
//     lazily when the queue reaches it -- nothing grows without bound.
#ifndef SRC_SIM_ENGINE_HPP_
#define SRC_SIM_ENGINE_HPP_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/obs/trace.hpp"
#include "src/sim/callback.hpp"

namespace lockin {

using SimTime = std::uint64_t;  // cycles

// Generation-tagged event handle: (generation << kSlotBits) | slot index,
// offset so that 0 is never a valid handle (callers use 0 as "none").
using EventId = std::uint64_t;

class SimEngine {
 public:
  SimEngine() = default;

  SimTime now() const { return now_; }

  // Schedules `fn` to run `delay` cycles from now. Returns a handle that
  // Cancel() accepts.
  EventId Schedule(SimTime delay, SimCallback fn);

  // Cancels a pending event in O(1); no-op if it already ran, was already
  // cancelled, or the handle is stale/unknown.
  void Cancel(EventId id);

  // Runs events until the queue drains or `until` is passed (events with
  // timestamp > until stay queued and now() stops at `until`).
  void RunUntil(SimTime until);

  // Runs until the queue is empty.
  void RunAll();

  std::size_t pending_events() const { return live_; }
  std::uint64_t executed_events() const { return executed_; }

  // Cancelled events still occupying queue memory (drained lazily as the
  // clock reaches them). Bounded by the queue size; cancelling an event
  // that already ran must not grow it.
  std::size_t cancel_backlog() const { return tombstones_; }

  // Allocator-traffic counters. In steady state (events scheduled and
  // executed at a stable pending depth) slab_blocks, queue_capacity and
  // heap_spills must not move: that is the "zero heap allocations per
  // event" contract bench_sim_perf checks.
  struct PoolStats {
    std::uint64_t slab_blocks = 0;     // event-slot slabs allocated (never freed)
    std::uint64_t slot_capacity = 0;   // total event slots across slabs
    std::uint64_t queue_capacity = 0;  // 4-ary heap backing-array capacity
    std::uint64_t heap_spills = 0;     // callbacks too large for inline storage
    std::uint64_t live_events = 0;
    std::uint64_t tombstones = 0;
  };
  PoolStats pool_stats() const;

  // --- LockScope tracing -----------------------------------------------------
  // The engine is single-threaded, so one ring serves the whole simulation;
  // events are stamped with sim now() (cycles of the simulated clock) and
  // labelled with the *simulated* thread id via PushAs. With no buffer
  // attached (the default) EmitTrace is a null check.
  void AttachTrace(TraceBuffer* buffer) { trace_ = buffer; }
  TraceBuffer* trace_buffer() const { return trace_; }
  void EmitTrace(TraceEventKind kind, std::uint16_t tid, std::uint32_t arg) {
    if (trace_ != nullptr) {
      trace_->PushAs(now_, kind, tid, arg);
    }
  }

 private:
  // Slot index and generation packed into an EventId. 24 bits of slot
  // index caps simultaneously-pending events at ~16.7M (the benches peak
  // in the hundreds); 40 bits of generation outlast any realistic run.
  static constexpr std::uint64_t kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ULL << kSlotBits) - 1;
  static constexpr std::uint32_t kSlabSize = 1024;  // slots per slab
  static constexpr std::uint32_t kNoFreeSlot = ~0u;

  enum class SlotState : std::uint8_t { kFree, kPending, kCancelled };

  struct EventSlot {
    SimCallback fn;
    std::uint64_t generation = 1;  // bumped on free; 0 never used, so id != 0
    std::uint32_t next_free = kNoFreeSlot;
    SlotState state = SlotState::kFree;
  };

  // 16-byte POD heap entry. Ordering key is (time, order); `order` packs
  // the global schedule sequence number above the slot index, so comparing
  // `order` alone is the FIFO tiebreak (sequence numbers are unique) while
  // still carrying the slot for O(1) lookup on pop.
  struct HeapEntry {
    SimTime time;
    std::uint64_t order;  // (seq << kSlotBits) | slot

    bool Before(const HeapEntry& other) const {
      return time != other.time ? time < other.time : order < other.order;
    }
  };

  EventSlot& SlotAt(std::uint32_t index) {
    return slabs_[index / kSlabSize][index % kSlabSize];
  }
  const EventSlot& SlotAt(std::uint32_t index) const {
    return slabs_[index / kSlabSize][index % kSlabSize];
  }

  std::uint32_t AllocSlot();
  void FreeSlot(std::uint32_t index);

  void HeapPush(HeapEntry entry);
  void HeapPopTop();

  // Pops tombstones and the next live event; returns false when drained.
  // On true, `now_` is advanced and the callback is moved into `fn`.
  bool PopNext(SimTime until, SimCallback& fn);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  std::size_t tombstones_ = 0;
  std::uint64_t heap_spills_ = 0;

  std::vector<HeapEntry> heap_;
  std::vector<std::unique_ptr<EventSlot[]>> slabs_;
  std::uint32_t free_head_ = kNoFreeSlot;
  TraceBuffer* trace_ = nullptr;
};

}  // namespace lockin

#endif  // SRC_SIM_ENGINE_HPP_
