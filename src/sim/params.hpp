// Calibration constants for the simulated Xeon testbed.
//
// Every latency below is a number the paper reports for its 2-socket Ivy
// Bridge Xeon E5-2680 v2 (sections 3-5); the power constants live in
// src/energy/power_model.hpp. Centralising them makes the substitution
// auditable: change a constant here and every figure reproduction follows.
#ifndef SRC_SIM_PARAMS_HPP_
#define SRC_SIM_PARAMS_HPP_

#include <cstdint>

namespace lockin {

struct SimParams {
  // --- Core clock ---------------------------------------------------------
  // Cycles per second at the max VF point (2.8 GHz Xeon).
  double cycles_per_second = 2.8e9;

  // --- Coherence (section 4.2 / 5.1) --------------------------------------
  // "'Waking up' a locally-spinning thread takes two cache-line transfers
  // (i.e., 280 cycles)" => one hop ~140 cycles.
  std::uint64_t line_transfer_cycles = 140;
  // "The waiting duration must be proportional to the maximum coherence
  // latency of the processor (e.g., 384 cycles on Xeon)."
  std::uint64_t max_coherence_cycles = 384;
  // Uncontested atomic acquire/release cost.
  std::uint64_t uncontested_acquire_cycles = 30;
  // Extra invalidation-burst cost per local-spinning waiter when a TTAS or
  // TICKET lock is released ("burst of requests on a single cache line when
  // the lock is released", section 5.2).
  std::uint64_t burst_per_waiter_cycles = 8;
  // Extra cost per waiter for TAS global spinning: continuous atomics keep
  // the line bouncing; the release itself must queue behind them ("the
  // stress on the lock ... makes the release of TAS very expensive").
  std::uint64_t tas_release_per_waiter_cycles = 20;

  // --- futex (section 4.3, Figure 6) ---------------------------------------
  // "A futex-sleep call (i.e., enqueuing behind the lock and descheduling
  // the thread) takes around 2100 cycles."
  std::uint64_t futex_sleep_cycles = 2100;
  // "Approximately 2700 cycles of the wake-up call."
  std::uint64_t futex_wake_call_cycles = 2700;
  // "The turnaround time is at least 7000 cycles": wake call + idle-to-
  // active + scheduling of the woken thread.
  std::uint64_t futex_turnaround_cycles = 7000;
  // "When the delay between the calls is very large (>600K cycles), the
  // turnaround latency explodes, because the hardware context sleeps in a
  // deeper idle state."
  std::uint64_t deep_idle_threshold_cycles = 600000;
  // Additional turnaround penalty once in a deep idle state (Figure 6 shows
  // turnaround climbing towards ~100K cycles at 10^7-cycle delays).
  std::uint64_t deep_idle_penalty_cycles = 85000;
  // Kernel futex hash-bucket lock hold times; operations on the same
  // address serialize on it ("operations on the same address (same MUTEX)
  // do contend on kernel level"). A sleep call holds the bucket for most of
  // its ~2100 cycles, which is why "for low delays between the two calls,
  // the wake-up call is more expensive as it waits behind a kernel lock for
  // the completion of the sleep call" (Figure 6).
  std::uint64_t futex_sleep_bucket_cycles = 2000;
  std::uint64_t futex_wake_bucket_cycles = 800;

  // --- monitor/mwait (section 4.2) -----------------------------------------
  // "The overloaded file operation takes roughly 700 cycles."
  std::uint64_t mwait_enter_cycles = 700;
  // "The best case wake-up latency from mwait ... is 1600 cycles."
  std::uint64_t mwait_wake_cycles = 1600;

  // --- DVFS (section 4.2) ---------------------------------------------------
  // "The VF-switch operation is slow: we measure that it takes 5300 cycles."
  std::uint64_t dvfs_switch_cycles = 5300;

  // --- Scheduler ------------------------------------------------------------
  // Time-slice when runnable threads exceed hardware contexts. Linux CFS
  // grants a few ms; 2.8M cycles ~= 1 ms on the paper's Xeon.
  std::uint64_t scheduler_quantum_cycles = 2800000;
  // Direct cost of a context switch.
  std::uint64_t context_switch_cycles = 3000;

  static SimParams PaperXeon() { return SimParams{}; }
};

}  // namespace lockin

#endif  // SRC_SIM_PARAMS_HPP_
