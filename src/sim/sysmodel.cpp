#include "src/sim/sysmodel.hpp"

namespace lockin {
namespace {

// Builders keep the table below readable.
SystemWorkload Spec(const std::string& system, const std::string& config, int threads, int locks,
                    std::uint64_t cs, std::uint64_t non_cs, double tput_ticket,
                    double tput_mutexee, double tpp_ticket, double tpp_mutexee,
                    double tail_ticket = 0, double tail_mutexee = 0,
                    std::uint64_t blocked = 0) {
  SystemWorkload w;
  w.system = system;
  w.config = config;
  w.workload.threads = threads;
  w.workload.locks = locks;
  w.workload.cs_cycles = cs;
  w.workload.non_cs_cycles = non_cs;
  w.workload.blocked_cycles = blocked;
  w.workload.randomize_cs = true;
  w.workload.duration_cycles = 140000000;  // 50 ms at 2.8 GHz
  w.workload.seed = static_cast<std::uint64_t>(threads) * 131 + locks;
  w.paper_throughput_ticket = tput_ticket;
  w.paper_throughput_mutexee = tput_mutexee;
  w.paper_tpp_ticket = tpp_ticket;
  w.paper_tpp_mutexee = tpp_mutexee;
  w.paper_tail_ticket = tail_ticket;
  w.paper_tail_mutexee = tail_mutexee;
  return w;
}

}  // namespace

std::vector<SystemWorkload> PaperSystemWorkloads() {
  std::vector<SystemWorkload> specs;

  // HamsterDB (Table 3: embedded KV store, 4 threads, one coarse DB lock).
  // Reads are short critical sections -- exactly the <4000-cycle regime
  // where MUTEX pathologically sleeps; MUTEXEE's unfairness shows up as the
  // famous ~19-22x HamsterDB tail latencies (Figure 15).
  specs.push_back(Spec("HamsterDB", "WT", 4, 1, 2500, 1200, 1.38, 1.17, 1.26, 1.16, 0.01, 0.64));
  specs.push_back(
      Spec("HamsterDB", "WT/RD", 4, 1, 1800, 900, 1.38, 1.17, 1.29, 1.19, 0.04, 18.96));
  specs.push_back(Spec("HamsterDB", "RD", 4, 1, 1600, 800, 1.26, 1.42, 1.31, 1.46, 0.19, 22.08));

  // Kyoto Cabinet (4 threads, one global lock, very short critical
  // sections): the largest wins for both spinlocks and MUTEXEE.
  specs.push_back(Spec("Kyoto", "CACHE", 4, 1, 500, 700, 1.85, 1.78, 1.84, 1.73));
  specs.push_back(Spec("Kyoto", "HT DB", 4, 1, 700, 900, 1.71, 1.73, 1.69, 1.69));
  specs.push_back(Spec("Kyoto", "B-TREE", 4, 1, 1100, 1300, 1.55, 1.52, 1.47, 1.42));

  // Memcached (8 threads): SET hammers the cache lock; GET spreads over
  // striped bucket locks (low contention -> every lock performs alike).
  specs.push_back(Spec("Memcached", "SET", 8, 1, 1000, 2000, 1.43, 1.14, 1.37, 1.13, 0.87, 0.91));
  specs.push_back(
      Spec("Memcached", "SET/GET", 8, 8, 900, 4000, 1.17, 1.07, 1.16, 1.07, 0.89, 0.94));
  specs.push_back(Spec("Memcached", "GET", 8, 32, 700, 6000, 1.03, 1.03, 1.03, 1.02, 1.05, 1.04));

  // MySQL/LinkBench: heavily oversubscribed (many connection threads on 40
  // hardware contexts). Fair spinning collapses: a preempted next-in-line
  // ticket holder stalls the whole lock for a scheduling quantum.
  specs.push_back(
      Spec("MySQL", "MEM", 120, 16, 4000, 20000, 0.01, 0.98, 0.02, 0.99, 1.22, 0.96));
  specs.push_back(
      Spec("MySQL", "SSD", 120, 16, 4000, 120000, 0.16, 1.02, 0.11, 1.02, 1.23, 0.76));

  // RocksDB (12 threads): synchronization funnels through a write queue and
  // condition variable built *on top of* the mutex, so the lock swap moves
  // little (paper: "altering MUTEX ... does not make a big difference").
  specs.push_back(Spec("RocksDB", "WT", 12, 6, 1500, 12000, 1.00, 1.10, 1.06, 1.11));
  specs.push_back(Spec("RocksDB", "WT/RD", 12, 8, 1200, 12000, 1.02, 1.12, 1.10, 1.12));
  specs.push_back(Spec("RocksDB", "RD", 12, 12, 900, 10000, 1.12, 1.11, 1.14, 1.10));

  // SQLite/TPC-C: connection threads plus engine threads oversubscribe the
  // machine as connections grow; long transactions (tens of ms) hide
  // MUTEXEE's per-lock unfairness from the transaction tail (section 6.1).
  specs.push_back(
      Spec("SQLite", "16 CON", 40, 2, 12000, 20000, 0.90, 1.25, 0.86, 1.25, 0.64, 0.70));
  specs.push_back(
      Spec("SQLite", "32 CON", 42, 2, 12000, 20000, 0.80, 1.33, 0.82, 1.57, 0.86, 0.65));
  specs.push_back(
      Spec("SQLite", "64 CON", 56, 2, 12000, 20000, 0.25, 1.44, 0.26, 1.75, 1.34, 0.70));

  return specs;
}

SystemResult RunSystemWorkload(const SystemWorkload& spec) {
  SystemResult result;
  result.spec = spec;
  WorkloadEnv env;
  result.mutex_result = RunLockWorkload("MUTEX", spec.workload, env);
  result.ticket_result = RunLockWorkload("TICKET", spec.workload, env);
  result.mutexee_result = RunLockWorkload("MUTEXEE", spec.workload, env);
  return result;
}

}  // namespace lockin
