// Simulated multi-core machine: hardware contexts, an oversubscription-aware
// scheduler, CPU-time accounting and energy integration.
//
// Threads execute *CPU work* (RunFor) interleaved with blocking (futex
// sleep). The scheduler places runnable threads onto hardware contexts in
// the paper's pinning order; when runnable threads exceed contexts it
// rotates them with a Linux-like quantum -- the mechanism behind the
// paper's oversubscription collapses (Figure 11 beyond 40 threads, the
// MySQL/SQLite rows of Figures 13-15).
//
// Energy: each context carries an ActivityState; the PowerModel is
// integrated over the piecewise-constant machine state, exactly like RAPL
// integrates real power. This is the simulated counterpart of
// ActivityRegistry (src/energy/model_meter.hpp).
#ifndef SRC_SIM_MACHINE_HPP_
#define SRC_SIM_MACHINE_HPP_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/energy/power_model.hpp"
#include "src/sim/callback.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/params.hpp"

namespace lockin {

class SimMachine {
 public:
  static constexpr std::uint64_t kInfiniteWork = ~0ULL;

  SimMachine(SimEngine* engine, Topology topology, PowerParams power_params,
             SimParams sim_params);

  SimEngine& engine() { return *engine_; }
  const SimParams& params() const { return params_; }
  const Topology& topology() const { return power_model_.topology(); }
  int contexts() const { return topology().total_contexts(); }

  // Global DVFS point used for power integration (Figure 2's min/max runs).
  // Takes effect from the last integration point, like the recompute-based
  // accounting it replaced.
  void SetVf(VfSetting vf) {
    vf_ = vf;
    RebuildPowerCache();
  }

  // --- Threads -------------------------------------------------------------
  // Adds a thread in the not-started state; returns its id.
  int AddThread();
  int thread_count() const { return static_cast<int>(threads_.size()); }

  // Makes the thread runnable for the first time.
  void Start(int tid);

  // Executes `cycles` of CPU time in `activity`, then calls `done`. CPU time
  // only advances while the thread holds a hardware context; preemption
  // pauses the clock. kInfiniteWork spins until CancelWork.
  void RunFor(int tid, std::uint64_t cycles, ActivityState activity,
              SimCallback done);

  // Cancels outstanding RunFor work without invoking its callback (a lock
  // granting to a spinning waiter uses this to end the spin).
  void CancelWork(int tid);

  // Updates the activity (power state) without touching remaining work.
  void SetActivity(int tid, ActivityState activity);

  // Releases the thread's context; the thread stops consuming CPU. Only
  // valid for a running thread with no outstanding work.
  void Block(int tid, ActivityState blocked_state = ActivityState::kSleeping);

  // Makes a blocked thread runnable `delay` cycles from now.
  void Unblock(int tid, std::uint64_t delay);

  bool IsRunning(int tid) const { return threads_[tid].state == ThreadState::kRunning; }
  bool IsReady(int tid) const { return threads_[tid].state == ThreadState::kReady; }
  bool IsBlocked(int tid) const { return threads_[tid].state == ThreadState::kBlocked; }

  // Invokes `fn` the next time `tid` is placed on a context (immediately if
  // already running). Used for FIFO lock handover to a descheduled waiter.
  void NotifyWhenRunning(int tid, SimCallback fn);

  // --- Energy ---------------------------------------------------------------
  struct EnergyTotals {
    double package_joules = 0.0;
    double dram_joules = 0.0;
    double seconds = 0.0;
    double total_joules() const { return package_joules + dram_joules; }
    double average_watts() const { return seconds > 0 ? total_joules() / seconds : 0.0; }
  };

  // Integrates up to now() and returns the running totals.
  EnergyTotals Energy();
  void ResetEnergy();

  // Context-seconds spent in each activity state (integrated alongside the
  // energy). Section 6.1 of the paper quantifies MUTEX's kernel time this
  // way: "SQLite spends more than 40% of the CPU time on the raw spin lock
  // function of the kernel ... MUTEXEE spends just 4%".
  std::vector<double> StateSeconds();
  // Share of *active* context time spent in `state` (0 when nothing ran).
  double ActiveShare(ActivityState state);

  // Distance between the incrementally-maintained power breakdown and a
  // full PowerModel recomputation (test hook: bounds the drift of the
  // per-core delta updates; see the power-cache comment below).
  double PowerCacheDriftForTest() const;

  double NowSeconds() const {
    return static_cast<double>(engine_->now()) / params_.cycles_per_second;
  }

  // Contexts currently active (diagnostics / CPI-style reporting).
  int ActiveContexts() const;

 private:
  enum class ThreadState { kNotStarted, kRunning, kReady, kBlocked };

  struct Thread {
    ThreadState state = ThreadState::kNotStarted;
    int ctx = -1;
    ActivityState activity = ActivityState::kInactive;
    // Outstanding work.
    bool has_work = false;
    std::uint64_t remaining = 0;  // kInfiniteWork for open-ended spinning
    SimCallback done;
    EventId work_event = 0;       // pending completion event (running only)
    SimTime resumed_at = 0;       // when the current work slice started
    std::vector<SimCallback> on_running;
  };

  struct Context {
    int tid = -1;
    EventId quantum_event = 0;
  };

  void AccumulateEnergy();
  void Dispatch();
  void Place(int tid, int ctx);
  void RemoveFromContext(int tid);
  void PauseWork(int tid);
  void ResumeWork(int tid);
  void OnQuantumExpired(int ctx);
  void ArmQuantum(int ctx);
  void SetContextState(int ctx, ActivityState state);

  // --- Incremental power accounting ---------------------------------------
  // The machine integrates power over piecewise-constant state, and states
  // change on every dispatch/block/quantum event, so a full O(contexts)
  // PowerModel recomputation per change dominated simulation wall-clock.
  // Instead the breakdown is maintained incrementally: a context change
  // re-derives only its own core's contribution (<= smt_per_core contexts)
  // and its socket's uncore term, and applies the delta to the running
  // totals. Values match PowerModel::ComponentWattsUniform up to
  // floating-point re-association (~1e-12 W over a full bench run, see
  // PowerCacheDriftForTest); the update sequence is deterministic, so runs
  // remain bit-for-bit repeatable.
  struct CoreTerms {
    double package = 0.0;  // dynamic + sleeping-housekeeping watts
    double cores = 0.0;
    double dram = 0.0;
    bool active = false;    // >= 1 active context
    bool at_max_vf = false; // active && shared VF point resolves to max
  };
  CoreTerms ComputeCoreTerms(int core_key) const;
  double UncoreTerm(int socket) const;
  void RebuildPowerCache();
  void ApplyContextChange(int ctx, ActivityState new_state);

  SimEngine* engine_;
  PowerModel power_model_;
  SimParams params_;
  VfSetting vf_ = VfSetting::kMax;

  std::vector<Thread> threads_;
  std::vector<Context> contexts_;
  std::vector<ActivityState> ctx_states_;
  std::deque<int> ready_;

  SimTime last_energy_time_ = 0;
  EnergyTotals energy_;

  // Power cache (see block comment above).
  PowerModel::Breakdown watts_;
  std::vector<CoreTerms> core_terms_;          // per core_key
  std::vector<int> socket_active_cores_;       // active cores per socket
  std::vector<int> socket_max_vf_cores_;       // active cores at max VF per socket
  std::vector<double> socket_uncore_;          // current uncore term per socket
  std::vector<int> core_key_of_ctx_;
  std::vector<int> socket_of_ctx_;
  std::vector<std::vector<int>> core_ctxs_;    // core_key -> ascending ctx list

  // State residency in integer cycles (exact, order-independent): per
  // activity state, completed context-cycles plus a live per-state context
  // count folded in at each integration point.
  std::vector<std::uint64_t> state_cycles_ =
      std::vector<std::uint64_t>(kActivityStateCount, 0);
  std::vector<std::uint32_t> state_counts_ =
      std::vector<std::uint32_t>(kActivityStateCount, 0);
};

}  // namespace lockin

#endif  // SRC_SIM_MACHINE_HPP_
