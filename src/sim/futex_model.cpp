#include "src/sim/futex_model.hpp"

#include <algorithm>
#include <cmath>

namespace lockin {

SimFutex::SimFutex(SimMachine* machine, std::uint64_t seed)
    : machine_(machine), jitter_rng_(seed) {}

std::uint64_t SimFutex::BucketDelay(std::uint64_t hold_cycles) {
  const SimTime now = machine_->engine().now();
  const SimTime start = std::max(now, bucket_busy_until_);
  bucket_busy_until_ = start + hold_cycles;
  return start - now;
}

std::uint64_t SimFutex::TurnaroundTail(SimTime slept_at) {
  const SimParams& p = machine_->params();
  const SimTime now = machine_->engine().now();
  const std::uint64_t slept_for = now > slept_at ? now - slept_at : 0;
  // Base tail: turnaround minus the wake call that the waker already paid.
  std::uint64_t tail = p.futex_turnaround_cycles - p.futex_wake_call_cycles;
  // +-10% scheduling noise (see jitter_rng_ comment in the header).
  tail = static_cast<std::uint64_t>(static_cast<double>(tail) *
                                    (0.9 + 0.2 * jitter_rng_.NextDouble()));
  if (slept_for > p.deep_idle_threshold_cycles) {
    // Deeper idle states take longer to exit; scale the penalty with the
    // log of the overshoot, saturating at the full penalty (Figure 6).
    const double overshoot = static_cast<double>(slept_for) /
                             static_cast<double>(p.deep_idle_threshold_cycles);
    const double frac = std::min(1.0, std::log10(overshoot) / 1.2);
    tail += static_cast<std::uint64_t>(frac * static_cast<double>(p.deep_idle_penalty_cycles));
    stats_.deep_sleeps++;
  }
  return tail;
}

void SimFutex::Sleep(int tid, std::uint64_t timeout_cycles, WakeCallback on_wake) {
  stats_.sleep_calls++;
  machine_->engine().EmitTrace(TraceEventKind::kFutexSleepBegin,
                               static_cast<std::uint16_t>(tid), 0);
  const SimParams& p = machine_->params();
  const std::uint64_t kernel_cycles =
      BucketDelay(p.futex_sleep_bucket_cycles) + p.futex_sleep_cycles;
  ++entering_;
  machine_->RunFor(tid, kernel_cycles, ActivityState::kKernel,
                   [this, tid, timeout_cycles, on_wake = std::move(on_wake)]() mutable {
                     --entering_;
                     if (pending_misses_ > 0) {
                       // A wake raced with the sleep call: EAGAIN, no block.
                       --pending_misses_;
                       stats_.sleep_misses++;
                       machine_->engine().EmitTrace(TraceEventKind::kFutexSleepEnd,
                                                    static_cast<std::uint16_t>(tid),
                                                    static_cast<std::uint32_t>(
                                                        WakeReason::kSleepMiss));
                       on_wake(WakeReason::kSleepMiss);
                       return;
                     }
                     Sleeper sleeper;
                     sleeper.tid = tid;
                     sleeper.slept_at = machine_->engine().now();
                     sleeper.timeout_event = 0;
                     sleeper.on_wake = std::move(on_wake);
                     if (timeout_cycles != 0) {
                       sleeper.timeout_event = machine_->engine().Schedule(
                           timeout_cycles, [this, tid] {
                             for (auto it = sleepers_.begin(); it != sleepers_.end(); ++it) {
                               if (it->tid == tid) {
                                 Sleeper timed = std::move(*it);
                                 sleepers_.erase(it);
                                 stats_.timeouts++;
                                 // Timeout expiry dequeues the waiter under
                                 // the same kernel bucket lock: short
                                 // timeouts clog the kernel (Figure 10).
                                 const std::uint64_t bucket_wait = BucketDelay(
                                     machine_->params().futex_wake_bucket_cycles);
                                 DeliverWake(std::move(timed), WakeReason::kTimedOut,
                                             bucket_wait);
                                 return;
                               }
                             }
                           });
                     }
                     sleepers_.push_back(std::move(sleeper));
                     machine_->Block(tid, ActivityState::kSleeping);
                   });
}

void SimFutex::DeliverWake(Sleeper sleeper, WakeReason reason, std::uint64_t extra_delay) {
  if (sleeper.timeout_event != 0 && reason != WakeReason::kTimedOut) {
    machine_->engine().Cancel(sleeper.timeout_event);
  }
  const std::uint64_t tail = TurnaroundTail(sleeper.slept_at) + extra_delay;
  const int tid = sleeper.tid;
  machine_->engine().EmitTrace(TraceEventKind::kFutexSleepEnd, static_cast<std::uint16_t>(tid),
                               static_cast<std::uint32_t>(reason));
  machine_->NotifyWhenRunning(tid, [on_wake = std::move(sleeper.on_wake), reason]() mutable {
    on_wake(reason);
  });
  machine_->Unblock(tid, tail);
}

void SimFutex::Wake(int tid, int count, SimCallback on_done) {
  stats_.wake_calls++;
  const SimParams& p = machine_->params();
  // A wake means the futex word changed in user space: every sleeper still
  // *entering* the kernel will fail its value check (EAGAIN) and return --
  // the "sleep miss" of section 4.4, decided at wake invocation time.
  if (entering_ > pending_misses_) {
    pending_misses_ = entering_;
  }
  const std::uint64_t kernel_cycles =
      BucketDelay(p.futex_wake_bucket_cycles) + p.futex_wake_call_cycles;
  // One wake call in flight per tid by construction (the waker is running
  // it), so the continuation parks in the tid's slot.
  wake_done_.Put(tid, std::move(on_done));
  machine_->RunFor(tid, kernel_cycles, ActivityState::kKernel, [this, tid, count] {
    int remaining = count;
    while (remaining > 0 && !sleepers_.empty()) {
      Sleeper sleeper = std::move(sleepers_.front());
      sleepers_.pop_front();
      stats_.threads_woken++;
      DeliverWake(std::move(sleeper), WakeReason::kSignalled);
      --remaining;
    }
    machine_->engine().EmitTrace(TraceEventKind::kFutexWake, static_cast<std::uint16_t>(tid),
                                 static_cast<std::uint32_t>(count - remaining));
    SimCallback done = wake_done_.Take(tid);
    done();
  });
}

}  // namespace lockin
