// Simulated lock workload driver.
//
// Reproduces the paper's microbenchmark shape (sections 5.2): N threads,
// L locks; each thread repeatedly picks a lock (uniformly at random when
// L > 1), acquires it, executes a critical section of `cs_cycles`, releases,
// and executes `non_cs_cycles` of private work. Reported metrics are the
// paper's: throughput (acquires/s), average power (W), TPP (acquires/Joule)
// and the acquire-latency distribution.
#ifndef SRC_SIM_WORKLOAD_HPP_
#define SRC_SIM_WORKLOAD_HPP_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/sim_lock.hpp"
#include "src/stats/histogram.hpp"

namespace lockin {

struct WorkloadConfig {
  int threads = 10;
  int locks = 1;
  std::uint64_t cs_cycles = 1000;
  std::uint64_t non_cs_cycles = 100;
  // Simulated duration. 28M cycles = 10 ms at 2.8 GHz; long enough for tens
  // of thousands of handovers per thread at paper-scale critical sections.
  std::uint64_t duration_cycles = 28000000;
  std::uint64_t seed = 1;
  // Blocked (off-CPU) time per iteration after the private work: models
  // I/O or network waits that *release the hardware context*. This is what
  // separates mild oversubscription (SQLite at 16 connections: most
  // connections blocked in I/O) from catastrophic oversubscription (MySQL
  // MEM: every connection runnable).
  std::uint64_t blocked_cycles = 0;
  // Jitter critical sections uniformly in [cs/2, 3cs/2] (0 = fixed size).
  bool randomize_cs = false;
  // Record still-waiting threads' elapsed wait at the end of the run into
  // the latency histogram (as a lower bound). Without this, a starved
  // MUTEXEE sleeper that never acquires would be invisible to the tail
  // percentiles the paper plots in Figures 9/15.
  bool record_censored_waits = true;
};

struct WorkloadResult {
  std::string lock_name;
  double seconds = 0.0;
  std::uint64_t total_acquires = 0;
  double throughput_per_s = 0.0;  // acquires/second
  double average_watts = 0.0;
  double package_joules = 0.0;
  double dram_joules = 0.0;
  double tpp = 0.0;  // acquires/Joule
  LatencyHistogram acquire_latency_cycles;
  SimLockStats lock_stats;        // aggregated over all locks
  SimFutex::Stats futex_stats;    // aggregated over all locks
  // Engine events executed by the run (bench_sim_perf's throughput basis;
  // also a cheap whole-run determinism fingerprint).
  std::uint64_t engine_events = 0;
  // Share of active context time spent in the futex kernel path vs in the
  // lock's spin-wait loops (the paper's section 6.1 kernel-time metric).
  double kernel_time_share = 0.0;
  double spin_time_share = 0.0;

  double ThroughputM() const { return throughput_per_s / 1e6; }
  double TppK() const { return tpp / 1e3; }
};

// Runs the workload with `lock_name` (see MakeSimLock) on a machine with
// `topology`. Uses the paper's Xeon power/sim parameters unless overridden.
struct WorkloadEnv {
  Topology topology = Topology::PaperXeon();
  PowerParams power = PowerParams::PaperXeon();
  SimParams sim = SimParams::PaperXeon();
  SimLockOptions lock_options;
};

WorkloadResult RunLockWorkload(const std::string& lock_name, const WorkloadConfig& config,
                               const WorkloadEnv& env = {});

// --- Phase-change workloads (bench/fig16_adaptive.cpp) ----------------------
//
// One continuous run whose contention regime changes at phase boundaries:
// the locks (and their adaptation state) persist across phases, which is
// exactly what distinguishes an adaptive runtime from re-tuning per run.

// Per-phase overrides applied to the base WorkloadConfig at the boundary.
struct WorkloadPhase {
  std::uint64_t duration_cycles = 28000000;
  std::uint64_t cs_cycles = 1000;
  std::uint64_t non_cs_cycles = 100;
  std::uint64_t blocked_cycles = 0;
  bool randomize_cs = false;
};

struct PhaseResult {
  std::uint64_t acquires = 0;
  double seconds = 0.0;
  double joules = 0.0;
  double watts = 0.0;
  double throughput_per_s = 0.0;
  double tpp = 0.0;  // acquires/Joule within the phase
};

struct PhasedWorkloadResult {
  std::string lock_name;
  std::vector<PhaseResult> phases;
  // Whole-run totals.
  std::uint64_t total_acquires = 0;
  double seconds = 0.0;
  double joules = 0.0;
  double tpp = 0.0;
  std::uint64_t engine_events = 0;
};

// Runs `phases` back to back with one set of locks (thread count, lock count
// and seed come from `base`; per-phase knobs from each WorkloadPhase).
PhasedWorkloadResult RunPhasedLockWorkload(const std::string& lock_name,
                                           const WorkloadConfig& base,
                                           const std::vector<WorkloadPhase>& phases,
                                           const WorkloadEnv& env = {});

}  // namespace lockin

#endif  // SRC_SIM_WORKLOAD_HPP_
