// Waiting-technique experiments (paper sections 3-4, Figures 2-7 and the
// section 4.4 sleep-power table).
//
// These drive the power model and the futex model directly -- they are the
// simulated counterparts of the paper's microbenchmarks that characterize
// the *primitives* (spinning, pausing, DVFS, mwait, futex) before any lock
// algorithm is involved.
#ifndef SRC_SIM_WAITING_HPP_
#define SRC_SIM_WAITING_HPP_

#include <cstdint>
#include <vector>

#include "src/energy/power_model.hpp"
#include "src/sim/params.hpp"

namespace lockin {

// --- Figure 2: power breakdown of the memory-intensive workload ------------
struct PowerBreakdownPoint {
  int threads;
  double total_w;
  double package_w;
  double cores_w;
  double dram_w;
};

// Power with `threads` hyper-threads running memory-intensive work in the
// paper's pinning order, at the given VF setting.
PowerBreakdownPoint PowerBreakdown(const PowerModel& model, int threads, VfSetting vf);

// --- Figures 3-5: power and CPI while waiting --------------------------------
// Cycles-per-instruction of each waiting technique, as measured in the
// paper: local spinning retires ~1 load/cycle; pause raises CPI to 4.6;
// a memory barrier stalls the loop on the load's retirement; global
// spinning's atomic ops take ~530 cycles each.
double WaitingCpi(ActivityState state);

// Power with `threads` threads waiting in `state` (lock never released,
// Figure 3/4/5 shape). Sleeping threads release their contexts.
double WaitingPowerWatts(const PowerModel& model, int threads, ActivityState state);

// --- Figure 6: futex latencies ------------------------------------------------
struct FutexLatencyPoint {
  std::uint64_t delay_cycles;       // sleep-invocation -> wake-invocation gap
  double wake_call_cycles;          // duration of the FUTEX_WAKE call
  double turnaround_cycles;         // wake invocation -> woken thread running
};

// Simulates the paper's two-thread lock-step futex microbenchmark for one
// delay value (median over `rounds` rounds).
FutexLatencyPoint MeasureFutexLatency(std::uint64_t delay_cycles, int rounds = 15);

// --- Section 4.4 table: power vs period between wake-ups ---------------------
struct SleepPowerPoint {
  std::uint64_t period_cycles;
  double watts;
  double sleep_miss_ratio;  // fraction of sleeps that missed (EAGAIN)
};

// One thread repeatedly futex-sleeps; a second wakes it every
// `period_cycles`. Power falls only once the period exceeds the sleep
// latency (~2100 cycles on the paper's Xeon).
SleepPowerPoint MeasureSleepPower(std::uint64_t period_cycles,
                                  std::uint64_t duration_cycles = 56000000);

// --- Figure 7: sleep vs spin vs spin-then-sleep (ss-T) ------------------------
struct SpinThenSleepPoint {
  int threads;
  std::uint64_t spin_quota;  // T: busy-wait handovers per futex handover
  double watts;
  double handovers_per_s;
};

// Token-passing communication benchmark: `spin_quota` == 0 reproduces the
// "sleep" series (every handover through futex); kSpinOnly reproduces the
// "spin" series (all threads busy-wait); otherwise two threads hand over in
// user space and swap in a sleeper every T handovers (ss-T).
inline constexpr std::uint64_t kSpinOnly = ~0ULL;
SpinThenSleepPoint MeasureSpinThenSleep(int threads, std::uint64_t spin_quota,
                                        std::uint64_t duration_cycles = 28000000);

}  // namespace lockin

#endif  // SRC_SIM_WAITING_HPP_
