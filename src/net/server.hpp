// NetServe server: N worker threads, each owning one epoll EventLoop,
// serving the RESP codec over loopback TCP and dispatching into a Scenario
// API system (src/net/dispatcher.hpp).
//
// Thread shape (the memcached model): the Listener lives on worker 0's
// loop; accepted fds are handed round-robin to a worker via Post, and from
// then on that connection's parsing, dispatch and replies all happen on
// that one worker thread -- no per-connection locks. The backing store is
// shared and internally locked, so the lock algorithm under test is
// exercised by real cross-thread contention whenever workers > 1.
//
// Shutdown has two grades:
//   Drain()  -- graceful: stop accepting, give every live connection one
//               final read pass (buffered pipelined commands still execute
//               and their replies flush before the close), then close.
//               In-flight requests are never dropped; this is the
//               SIGTERM/SIGINT path.
//   Stop()   -- immediate: connections are torn down with queued output
//               discarded. Test/abort path.
// Both are thread-safe and idempotent; Join() waits for the workers.
//
// Observability: every server owns a standalone MetricsRegistry (isolated
// per instance so tests can assert exact counter invariants):
//   net.conn.accepted/closed, net.conn.active (gauge),
//   net.requests / net.replies, net.bytes.in/out,
//   net.protocol_errors, net.service_ns (histogram around Execute),
//   plus the dispatcher's net.cmd.* / net.hits / net.misses / net.busy.
// STATS over the wire returns the registry's JSON (StatsJson()).
//
// FailSafe: NetServerOptions::watchdog_ms arms a stall watchdog thread
// that checks every worker loop's tick counter; a loop that stops ticking
// (a handler wedged behind a lock) gets lock-holder + failpoint state
// dumped to stderr, and optionally abort()s -- the networked analogue of
// the scenario driver's watchdog.
#ifndef SRC_NET_SERVER_HPP_
#define SRC_NET_SERVER_HPP_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/net/channel.hpp"
#include "src/net/dispatcher.hpp"
#include "src/net/event_loop.hpp"
#include "src/net/resp.hpp"
#include "src/obs/metrics.hpp"

namespace lockin {

struct NetServerOptions {
  std::uint16_t port = 0;  // 0 = ephemeral; read back via port()
  std::size_t workers = 1;
  NetBackendConfig backend;
  RespLimits limits;
  Connection::Options conn;
  std::uint64_t watchdog_ms = 0;  // 0 = no stall watchdog
  bool watchdog_abort = false;    // abort() on a confirmed stall
};

class LockServer {
 public:
  explicit LockServer(const NetServerOptions& options);
  ~LockServer();  // Stop() + Join() if still running

  LockServer(const LockServer&) = delete;
  LockServer& operator=(const LockServer&) = delete;

  // Binds, starts the worker threads, begins accepting. Throws on bind
  // failure. Call once.
  void Start();

  std::uint16_t port() const { return port_; }

  void Drain();  // graceful shutdown; returns immediately, Join() to wait
  void Stop();   // immediate shutdown
  void Join();   // waits for every worker thread to exit

  MetricsRegistry& metrics() { return metrics_; }
  std::string StatsJson() const;

 private:
  struct Worker;
  struct Client;
  struct Stats;

  void AcceptFd(int fd);
  void AdoptConnection(Worker& worker, int fd);
  void OnData(Worker& worker, Client* client, std::string_view data);
  void OnClose(Worker& worker, Client* client);
  void WatchdogMain();

  NetServerOptions options_;
  MetricsRegistry metrics_;
  std::unique_ptr<Stats> stats_;
  std::unique_ptr<CommandDispatcher> dispatcher_;
  std::atomic<long long> active_conns_{0};
  std::vector<std::unique_ptr<Worker>> workers_;
  std::unique_ptr<Listener> listener_;  // lives on workers_[0]'s loop
  std::uint16_t port_ = 0;
  std::atomic<std::size_t> next_worker_{0};
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> joined_{false};

  std::thread watchdog_;
  std::atomic<bool> watchdog_stop_{false};
};

}  // namespace lockin

#endif  // SRC_NET_SERVER_HPP_
