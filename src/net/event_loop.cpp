#include "src/net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <stdexcept>
#include <utility>

namespace lockin {

EventLoop::EventLoop() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    throw std::runtime_error("epoll_create1 failed");
  }
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    close(epoll_fd_);
    throw std::runtime_error("eventfd failed");
  }
  Add(wake_fd_, EPOLLIN, [this](std::uint32_t) { DrainWake(); });
}

EventLoop::~EventLoop() {
  close(wake_fd_);
  close(epoll_fd_);
}

void EventLoop::Add(int fd, std::uint32_t events, IoHandler handler) {
  handlers_[fd] = std::make_shared<IoHandler>(std::move(handler));
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    handlers_.erase(fd);
    throw std::runtime_error("epoll_ctl(ADD) failed");
  }
}

void EventLoop::Update(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    throw std::runtime_error("epoll_ctl(MOD) failed");
  }
}

void EventLoop::Remove(int fd) {
  handlers_.erase(fd);
  // The fd may already be closed (EBADF) -- removal must stay idempotent.
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

void EventLoop::Run() {
  loop_thread_ = std::this_thread::get_id();
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = epoll_wait(epoll_fd_, events, kMaxEvents, /*timeout_ms=*/1000);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      std::perror("lockin net: epoll_wait");
      break;
    }
    ticks_.fetch_add(1, std::memory_order_relaxed);
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const auto it = handlers_.find(fd);
      if (it == handlers_.end()) {
        continue;  // removed by an earlier handler this iteration
      }
      const std::shared_ptr<IoHandler> handler = it->second;
      (*handler)(events[i].events);
    }
    RunPostedTasks();
  }
  // A final task drain so a Stop() racing a Post() cannot strand a task.
  RunPostedTasks();
}

void EventLoop::Stop() {
  stop_.store(true, std::memory_order_release);
  Wake();
}

void EventLoop::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> guard(tasks_mu_);
    tasks_.push_back(std::move(task));
  }
  Wake();
}

void EventLoop::Wake() {
  const std::uint64_t one = 1;
  // Best-effort: EAGAIN means the counter is already nonzero (wake pending).
  [[maybe_unused]] const ssize_t n = write(wake_fd_, &one, sizeof one);
}

void EventLoop::DrainWake() {
  std::uint64_t value = 0;
  while (read(wake_fd_, &value, sizeof value) > 0) {
  }
}

void EventLoop::RunPostedTasks() {
  std::vector<std::function<void()>> pending;
  {
    std::lock_guard<std::mutex> guard(tasks_mu_);
    pending.swap(tasks_);
  }
  for (std::function<void()>& task : pending) {
    task();
  }
}

}  // namespace lockin
