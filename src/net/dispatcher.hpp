// NetServe request dispatcher: wire commands -> Scenario API systems.
//
// One dispatcher per server, shared by every worker loop: the backing
// store (KvStore, MemCache, or a NosqlDb backend) is built once with the
// configured lock algorithm and ShardCombine options, and its own internal
// locking is what makes concurrent Execute calls from multiple workers
// safe -- the lock under test now sits behind real request parsing, which
// is the whole point of the subsystem.
//
// FailSafe integration: with op_deadline_ns > 0 the backend's locks are
// DeadlineHandle-wrapped (the same ScenarioConfig::MakeLockFactory plumbing
// the in-process driver uses) and Execute arms a per-command deadline. A
// command whose entry lock acquisition misses it throws OpShedError, which
// becomes a protocol-level `-BUSY ...` reply -- the connection stays
// healthy and bounded instead of hanging behind a congested lock. The
// `scenario/op` delay failpoint fires once per command *inside* the armed
// window, so chaos tests can force deterministic shedding.
#ifndef SRC_NET_DISPATCHER_HPP_
#define SRC_NET_DISPATCHER_HPP_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/net/resp.hpp"
#include "src/obs/metrics.hpp"

namespace lockin {

// Which store serves the wire, and under what locking regime. Mirrors
// ScenarioConfig{lock_name, shards, combine, rw, op_deadline_ns} -- the
// knobs the scenario layer already exposes, now reachable per server.
struct NetBackendConfig {
  std::string system = "kvstore";  // see CommandDispatcher::KnownSystems()
  std::string lock_name = "MUTEX";
  std::uint32_t shards = 0;  // 0 = the system's registered default shape
  bool combine = false;      // flat-combine shard mutations
  bool rw = false;           // per-shard reader-writer locks
  std::uint64_t op_deadline_ns = 0;  // 0 = never shed
  std::size_t cache_capacity = 100000;  // MemCache LRU capacity
};

class CommandDispatcher {
 public:
  enum class After : std::uint8_t {
    kContinue,  // keep serving this connection
    kClose,     // flush the reply, then close (QUIT)
  };

  // `stats_json` supplies the STATS reply body (the server's metrics JSON);
  // may be null (STATS then returns an empty object).
  CommandDispatcher(const NetBackendConfig& config, MetricsRegistry* metrics,
                    std::function<std::string()> stats_json);
  ~CommandDispatcher();

  CommandDispatcher(const CommandDispatcher&) = delete;
  CommandDispatcher& operator=(const CommandDispatcher&) = delete;

  // Executes one command and appends its RESP reply to *out. Callable
  // concurrently from every worker thread.
  After Execute(const RespCommand& command, std::string* out);

  // Valid NetBackendConfig::system values.
  static std::vector<std::string> KnownSystems();

  const std::string& system() const;

  // Opaque store adapter (public so dispatcher.cpp's per-system adapters
  // can derive from it; not part of the user-facing API).
  struct Backend;

 private:
  struct Counters;

  std::unique_ptr<Backend> backend_;
  std::unique_ptr<Counters> counters_;
  std::function<std::string()> stats_json_;
  std::string system_;
  std::uint64_t op_deadline_ns_ = 0;
};

// Key mapping for the uint64-keyed systems (KvStore, NosqlDb): an
// all-decimal-digits key is its numeric value (so clients can address
// specific shards / ranges deterministically), anything else hashes FNV-1a.
std::uint64_t NetKeyToUint64(const std::string& key);

}  // namespace lockin

#endif  // SRC_NET_DISPATCHER_HPP_
