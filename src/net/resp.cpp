#include "src/net/resp.hpp"

#include <charconv>
#include <cstring>

namespace lockin {
namespace {

// Parses a non-negative integer (or -1 when allow_minus_one) from [begin,
// end). Returns false on empty/garbage/overflow -- headers like "*abc" or
// "$" must be protocol errors, not zeros.
bool ParseHeaderInt(const char* begin, const char* end, long long* out,
                    bool allow_minus_one) {
  if (begin == end) {
    return false;
  }
  const auto [ptr, ec] = std::from_chars(begin, end, *out);
  if (ec != std::errc() || ptr != end) {
    return false;
  }
  return *out >= 0 || (allow_minus_one && *out == -1);
}

// Finds '\n' in buffer[from..), returning npos when absent.
std::size_t FindNewline(const std::string& buffer, std::size_t from) {
  const void* hit = std::memchr(buffer.data() + from, '\n', buffer.size() - from);
  if (hit == nullptr) {
    return std::string::npos;
  }
  return static_cast<std::size_t>(static_cast<const char*>(hit) - buffer.data());
}

// Strips one trailing '\r' (lines are CRLF on the wire, but a bare LF from
// an interactive client is tolerated, like redis-cli's inline mode).
std::string_view StripCr(std::string_view line) {
  if (!line.empty() && line.back() == '\r') {
    line.remove_suffix(1);
  }
  return line;
}

}  // namespace

void RespParser::Feed(std::string_view data) {
  if (broken_) {
    return;  // latched error: drop everything, the connection is closing
  }
  // Compact before growing: once the delivered prefix dominates the buffer,
  // shift the tail down so pipelined streams don't grow it without bound.
  if (consumed_ > 4096 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data);
}

RespParseStatus RespParser::FailWith(std::string* error, const std::string& message) {
  broken_ = true;
  error_ = message;
  buffer_.clear();
  consumed_ = 0;
  if (error != nullptr) {
    *error = message;
  }
  return RespParseStatus::kError;
}

RespParseStatus RespParser::Next(RespCommand* out, std::string* error) {
  if (broken_) {
    if (error != nullptr) {
      *error = error_;
    }
    return RespParseStatus::kError;
  }
  // Loop: empty inline lines and `*0` arrays are consumed silently and
  // parsing continues with the next frame.
  for (;;) {
    std::size_t cursor = consumed_;
    if (cursor >= buffer_.size()) {
      return RespParseStatus::kNeedMore;
    }
    if (buffer_[cursor] == '*') {
      // RESP array: *<count>\r\n then count x ($<len>\r\n<payload>\r\n).
      const std::size_t header_end = FindNewline(buffer_, cursor);
      if (header_end == std::string::npos) {
        if (buffer_.size() - cursor > 32) {
          return FailWith(error, "invalid array header (no terminator)");
        }
        return RespParseStatus::kNeedMore;
      }
      const std::string_view count_text =
          StripCr(std::string_view(buffer_).substr(cursor + 1, header_end - cursor - 1));
      long long count = 0;
      if (!ParseHeaderInt(count_text.data(), count_text.data() + count_text.size(), &count,
                          /*allow_minus_one=*/false)) {
        return FailWith(error, "invalid array header");
      }
      if (static_cast<std::size_t>(count) > limits_.max_args) {
        return FailWith(error, "too many arguments");
      }
      cursor = header_end + 1;
      std::vector<std::string> args;
      args.reserve(static_cast<std::size_t>(count));
      for (long long i = 0; i < count; ++i) {
        if (cursor >= buffer_.size()) {
          return RespParseStatus::kNeedMore;
        }
        if (buffer_[cursor] != '$') {
          return FailWith(error, "expected bulk string in array");
        }
        const std::size_t len_end = FindNewline(buffer_, cursor);
        if (len_end == std::string::npos) {
          if (buffer_.size() - cursor > 32) {
            return FailWith(error, "invalid bulk header (no terminator)");
          }
          return RespParseStatus::kNeedMore;
        }
        const std::string_view len_text =
            StripCr(std::string_view(buffer_).substr(cursor + 1, len_end - cursor - 1));
        long long len = 0;
        if (!ParseHeaderInt(len_text.data(), len_text.data() + len_text.size(), &len,
                            /*allow_minus_one=*/false)) {
          return FailWith(error, "invalid bulk length");
        }
        // Rejected from the header alone: the payload is never buffered.
        if (static_cast<std::size_t>(len) > limits_.max_bulk_bytes) {
          return FailWith(error, "bulk string too large");
        }
        const std::size_t payload_start = len_end + 1;
        // Payload + its CRLF (or LF) terminator.
        if (buffer_.size() < payload_start + static_cast<std::size_t>(len) + 1) {
          if (buffer_.size() - consumed_ > limits_.max_command_bytes) {
            return FailWith(error, "command too large");
          }
          return RespParseStatus::kNeedMore;
        }
        std::size_t terminator = payload_start + static_cast<std::size_t>(len);
        std::size_t after = terminator + 1;
        if (buffer_[terminator] == '\r') {
          if (buffer_.size() < after + 1) {
            return RespParseStatus::kNeedMore;
          }
          if (buffer_[after] != '\n') {
            return FailWith(error, "bulk string not terminated");
          }
          ++after;
        } else if (buffer_[terminator] != '\n') {
          return FailWith(error, "bulk string not terminated");
        }
        args.emplace_back(buffer_, payload_start, static_cast<std::size_t>(len));
        cursor = after;
      }
      consumed_ = cursor;
      if (args.empty()) {
        continue;  // *0: legal no-op frame
      }
      out->args = std::move(args);
      return RespParseStatus::kCommand;
    }
    if (buffer_[cursor] == '$') {
      // A bulk string outside an array is not a request framing we accept.
      return FailWith(error, "expected array or inline command");
    }
    // Inline command: one line, whitespace-separated tokens.
    const std::size_t line_end = FindNewline(buffer_, cursor);
    if (line_end == std::string::npos) {
      if (buffer_.size() - cursor > limits_.max_inline_bytes) {
        return FailWith(error, "inline command too long");
      }
      return RespParseStatus::kNeedMore;
    }
    if (line_end - cursor > limits_.max_inline_bytes) {
      return FailWith(error, "inline command too long");
    }
    const std::string_view line =
        StripCr(std::string_view(buffer_).substr(cursor, line_end - cursor));
    consumed_ = line_end + 1;
    std::vector<std::string> args;
    std::size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) {
        ++i;
      }
      std::size_t start = i;
      while (i < line.size() && line[i] != ' ' && line[i] != '\t') {
        ++i;
      }
      if (i > start) {
        if (args.size() == limits_.max_args) {
          return FailWith(error, "too many arguments");
        }
        args.emplace_back(line.substr(start, i - start));
      }
    }
    if (args.empty()) {
      continue;  // blank line: ignore, like memcached
    }
    out->args = std::move(args);
    return RespParseStatus::kCommand;
  }
}

// --- Reply parser ------------------------------------------------------------

void RespReplyParser::Feed(std::string_view data) {
  if (broken_) {
    return;
  }
  if (consumed_ > 4096 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data);
}

RespParseStatus RespReplyParser::FailWith(std::string* error, const std::string& message) {
  broken_ = true;
  error_ = message;
  buffer_.clear();
  consumed_ = 0;
  if (error != nullptr) {
    *error = message;
  }
  return RespParseStatus::kError;
}

RespParseStatus RespReplyParser::Next(RespReply* out, std::string* error) {
  if (broken_) {
    if (error != nullptr) {
      *error = error_;
    }
    return RespParseStatus::kError;
  }
  const std::size_t cursor = consumed_;
  if (cursor >= buffer_.size()) {
    return RespParseStatus::kNeedMore;
  }
  const char kind = buffer_[cursor];
  const std::size_t line_end = FindNewline(buffer_, cursor);
  if (line_end == std::string::npos) {
    if (buffer_.size() - cursor > limits_.max_inline_bytes) {
      return FailWith(error, "reply line too long");
    }
    return RespParseStatus::kNeedMore;
  }
  const std::string_view line =
      StripCr(std::string_view(buffer_).substr(cursor + 1, line_end - cursor - 1));
  switch (kind) {
    case '+':
      out->type = RespReply::Type::kSimple;
      out->text.assign(line);
      consumed_ = line_end + 1;
      return RespParseStatus::kCommand;
    case '-':
      out->type = RespReply::Type::kError;
      out->text.assign(line);
      consumed_ = line_end + 1;
      return RespParseStatus::kCommand;
    case ':': {
      long long value = 0;
      const bool negative = !line.empty() && line.front() == '-';
      const std::string_view digits = negative ? line.substr(1) : line;
      if (!ParseHeaderInt(digits.data(), digits.data() + digits.size(), &value,
                          /*allow_minus_one=*/false)) {
        return FailWith(error, "invalid integer reply");
      }
      out->type = RespReply::Type::kInteger;
      out->integer = negative ? -value : value;
      out->text.clear();
      consumed_ = line_end + 1;
      return RespParseStatus::kCommand;
    }
    case '$': {
      long long len = 0;
      if (!ParseHeaderInt(line.data(), line.data() + line.size(), &len,
                          /*allow_minus_one=*/true)) {
        return FailWith(error, "invalid bulk reply header");
      }
      if (len == -1) {
        out->type = RespReply::Type::kNil;
        out->text.clear();
        consumed_ = line_end + 1;
        return RespParseStatus::kCommand;
      }
      if (static_cast<std::size_t>(len) > limits_.max_bulk_bytes) {
        return FailWith(error, "bulk reply too large");
      }
      const std::size_t payload_start = line_end + 1;
      if (buffer_.size() < payload_start + static_cast<std::size_t>(len) + 1) {
        return RespParseStatus::kNeedMore;
      }
      std::size_t terminator = payload_start + static_cast<std::size_t>(len);
      std::size_t after = terminator + 1;
      if (buffer_[terminator] == '\r') {
        if (buffer_.size() < after + 1) {
          return RespParseStatus::kNeedMore;
        }
        if (buffer_[after] != '\n') {
          return FailWith(error, "bulk reply not terminated");
        }
        ++after;
      } else if (buffer_[terminator] != '\n') {
        return FailWith(error, "bulk reply not terminated");
      }
      out->type = RespReply::Type::kBulk;
      out->text.assign(buffer_, payload_start, static_cast<std::size_t>(len));
      consumed_ = after;
      return RespParseStatus::kCommand;
    }
    default:
      return FailWith(error, "invalid reply type byte");
  }
}

// --- Encoders ----------------------------------------------------------------

void RespAppendSimple(std::string* out, std::string_view text) {
  out->push_back('+');
  out->append(text);
  out->append("\r\n");
}

void RespAppendError(std::string* out, std::string_view message) {
  out->push_back('-');
  // A reply line must stay one line: defang embedded newlines.
  for (const char ch : message) {
    out->push_back(ch == '\r' || ch == '\n' ? ' ' : ch);
  }
  out->append("\r\n");
}

void RespAppendInteger(std::string* out, long long value) {
  out->push_back(':');
  out->append(std::to_string(value));
  out->append("\r\n");
}

void RespAppendBulk(std::string* out, std::string_view data) {
  out->push_back('$');
  out->append(std::to_string(data.size()));
  out->append("\r\n");
  out->append(data);
  out->append("\r\n");
}

void RespAppendNil(std::string* out) { out->append("$-1\r\n"); }

void RespAppendCommand(std::string* out, const std::vector<std::string>& args) {
  out->push_back('*');
  out->append(std::to_string(args.size()));
  out->append("\r\n");
  for (const std::string& arg : args) {
    RespAppendBulk(out, arg);
  }
}

}  // namespace lockin
