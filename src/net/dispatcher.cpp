#include "src/net/dispatcher.hpp"

#include <cctype>
#include <stdexcept>
#include <utility>

#include "src/platform/failpoint.hpp"
#include "src/systems/cache.hpp"
#include "src/systems/kvstore.hpp"
#include "src/systems/nosql.hpp"
#include "src/systems/workload_api.hpp"

namespace lockin {

std::uint64_t NetKeyToUint64(const std::string& key) {
  if (!key.empty() && key.size() <= 19) {
    std::uint64_t value = 0;
    bool all_digits = true;
    for (const char ch : key) {
      if (ch < '0' || ch > '9') {
        all_digits = false;
        break;
      }
      value = value * 10 + static_cast<std::uint64_t>(ch - '0');
    }
    if (all_digits) {
      return value;
    }
  }
  std::uint64_t hash = 1469598103934665603ULL;  // FNV-1a 64
  for (const char ch : key) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= 1099511628211ULL;
  }
  return hash;
}

// --- Backend adapters --------------------------------------------------------

// Uniform store interface over the three Scenario API system families. All
// methods are called concurrently; thread safety comes from the systems'
// own locks (built from the configured lock factory).
struct CommandDispatcher::Backend {
  virtual ~Backend() = default;
  virtual bool Get(const std::string& key, std::string* out) = 0;
  virtual void Set(const std::string& key, std::string value) = 0;
  virtual bool Del(const std::string& key) = 0;
  // Returns false when the system has no append operation.
  virtual bool Append(const std::string& key, const std::string& suffix) = 0;
  virtual std::size_t Size() = 0;
};

namespace {

struct KvBackend final : CommandDispatcher::Backend {
  KvBackend(const LockFactory& make_lock, ShardOptions options) : store(make_lock, options) {}
  bool Get(const std::string& key, std::string* out) override {
    return store.Get(NetKeyToUint64(key), out);
  }
  void Set(const std::string& key, std::string value) override {
    store.Put(NetKeyToUint64(key), std::move(value));
  }
  bool Del(const std::string& key) override { return store.Erase(NetKeyToUint64(key)); }
  bool Append(const std::string&, const std::string&) override { return false; }
  std::size_t Size() override { return store.Size(); }
  KvStore store;
};

struct CacheBackend final : CommandDispatcher::Backend {
  CacheBackend(const LockFactory& make_lock, MemCache::Config config)
      : store(make_lock, config) {}
  bool Get(const std::string& key, std::string* out) override { return store.Get(key, out); }
  void Set(const std::string& key, std::string value) override {
    store.Set(key, std::move(value));
  }
  bool Del(const std::string& key) override { return store.Delete(key); }
  bool Append(const std::string&, const std::string&) override { return false; }
  std::size_t Size() override { return store.Size(); }
  MemCache store;
};

struct NosqlBackend final : CommandDispatcher::Backend {
  explicit NosqlBackend(std::unique_ptr<NosqlDb> db_in) : db(std::move(db_in)) {}
  bool Get(const std::string& key, std::string* out) override {
    return db->Get(NetKeyToUint64(key), out);
  }
  void Set(const std::string& key, std::string value) override {
    db->Set(NetKeyToUint64(key), std::move(value));
  }
  bool Del(const std::string& key) override { return db->Remove(NetKeyToUint64(key)); }
  bool Append(const std::string& key, const std::string& suffix) override {
    db->Append(NetKeyToUint64(key), suffix);
    return true;
  }
  std::size_t Size() override { return db->Count(); }
  std::unique_ptr<NosqlDb> db;
};

std::unique_ptr<CommandDispatcher::Backend> BuildBackend(const NetBackendConfig& config) {
  // Reuse the scenario layer's factory plumbing: deadline runs get every
  // backend lock wrapped in a DeadlineHandle, exactly like in-process
  // scenario runs (src/systems/workload_api.hpp).
  ScenarioConfig scenario;
  scenario.lock_name = config.lock_name;
  scenario.op_deadline_ns = config.op_deadline_ns;
  const LockFactory factory = scenario.MakeLockFactory();

  const auto shard_options = [&](std::size_t default_shards) {
    ShardOptions options;
    options.shards = config.shards > 0 ? config.shards : default_shards;
    options.combine = config.combine;
    options.rw = config.rw;
    return options;
  };
  if (config.system == "kvstore") {
    return std::make_unique<KvBackend>(factory, shard_options(1));
  }
  if (config.system == "cache") {
    MemCache::Config cache;
    cache.shards = config.shards > 0 ? config.shards : 16;
    cache.capacity = config.cache_capacity;
    cache.combine = config.combine;
    cache.rw = config.rw;
    return std::make_unique<CacheBackend>(factory, cache);
  }
  if (config.system == "nosql-cache") {
    return std::make_unique<NosqlBackend>(
        std::make_unique<CacheDb>(factory, shard_options(1)));
  }
  if (config.system == "nosql-hash") {
    return std::make_unique<NosqlBackend>(
        std::make_unique<HashDb>(factory, shard_options(8)));
  }
  if (config.system == "nosql-btree") {
    return std::make_unique<NosqlBackend>(
        std::make_unique<TreeDb>(factory, shard_options(1)));
  }
  std::string known;
  for (const std::string& name : CommandDispatcher::KnownSystems()) {
    known += ' ';
    known += name;
  }
  throw std::invalid_argument("unknown net system: '" + config.system +
                              "'; known systems:" + known);
}

}  // namespace

// Cached metric references: registry lookup takes a mutex, so resolve each
// counter once at construction and pay only the sharded increment per
// command (the MetricsRegistry discipline).
struct CommandDispatcher::Counters {
  explicit Counters(MetricsRegistry* registry)
      : get(registry->Counter("net.cmd.get")),
        set(registry->Counter("net.cmd.set")),
        del(registry->Counter("net.cmd.del")),
        append(registry->Counter("net.cmd.append")),
        ping(registry->Counter("net.cmd.ping")),
        stats(registry->Counter("net.cmd.stats")),
        size(registry->Counter("net.cmd.size")),
        quit(registry->Counter("net.cmd.quit")),
        unknown(registry->Counter("net.cmd.unknown")),
        hits(registry->Counter("net.hits")),
        misses(registry->Counter("net.misses")),
        busy(registry->Counter("net.busy")),
        errors(registry->Counter("net.errors")) {}

  MetricCounter& get;
  MetricCounter& set;
  MetricCounter& del;
  MetricCounter& append;
  MetricCounter& ping;
  MetricCounter& stats;
  MetricCounter& size;
  MetricCounter& quit;
  MetricCounter& unknown;
  MetricCounter& hits;
  MetricCounter& misses;
  MetricCounter& busy;
  MetricCounter& errors;
};

CommandDispatcher::CommandDispatcher(const NetBackendConfig& config, MetricsRegistry* metrics,
                                     std::function<std::string()> stats_json)
    : backend_(BuildBackend(config)),
      counters_(std::make_unique<Counters>(metrics)),
      stats_json_(std::move(stats_json)),
      op_deadline_ns_(config.op_deadline_ns) {
  system_ = config.system;
}

CommandDispatcher::~CommandDispatcher() = default;

std::vector<std::string> CommandDispatcher::KnownSystems() {
  return {"kvstore", "cache", "nosql-cache", "nosql-hash", "nosql-btree"};
}

const std::string& CommandDispatcher::system() const { return system_; }

CommandDispatcher::After CommandDispatcher::Execute(const RespCommand& command,
                                                    std::string* out) {
  if (command.args.empty()) {
    counters_->errors.Add();
    RespAppendError(out, "ERR empty command");
    return After::kContinue;
  }
  std::string verb = command.args[0];
  for (char& ch : verb) {
    ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
  }
  const auto arity_error = [&](const char* name) {
    counters_->errors.Add();
    RespAppendError(out, std::string("ERR wrong number of arguments for '") + name + "'");
    return After::kContinue;
  };
  // The deadline window opens before the chaos site so an armed
  // `scenario/op` *delay* rule eats into this command's budget -- the
  // deterministic way to force BUSY shedding in tests and chaos runs.
  if (op_deadline_ns_ > 0) {
    ArmOpDeadline(op_deadline_ns_);
  }
  (void)FailpointFired(FailpointId::kScenarioOp);  // delay-only chaos site
  try {
    After after = After::kContinue;
    if (verb == "GET") {
      if (command.args.size() != 2) {
        return arity_error("get");
      }
      counters_->get.Add();
      std::string value;
      if (backend_->Get(command.args[1], &value)) {
        counters_->hits.Add();
        RespAppendBulk(out, value);
      } else {
        counters_->misses.Add();
        RespAppendNil(out);
      }
    } else if (verb == "SET") {
      if (command.args.size() != 3) {
        return arity_error("set");
      }
      counters_->set.Add();
      backend_->Set(command.args[1], command.args[2]);
      RespAppendSimple(out, "OK");
    } else if (verb == "DEL") {
      if (command.args.size() != 2) {
        return arity_error("del");
      }
      counters_->del.Add();
      RespAppendInteger(out, backend_->Del(command.args[1]) ? 1 : 0);
    } else if (verb == "APPEND") {
      if (command.args.size() != 3) {
        return arity_error("append");
      }
      counters_->append.Add();
      if (backend_->Append(command.args[1], command.args[2])) {
        RespAppendSimple(out, "OK");
      } else {
        counters_->errors.Add();
        RespAppendError(out, "ERR APPEND is not supported by system '" + system_ + "'");
      }
    } else if (verb == "PING") {
      counters_->ping.Add();
      RespAppendSimple(out, "PONG");
    } else if (verb == "STATS") {
      counters_->stats.Add();
      RespAppendBulk(out, stats_json_ ? stats_json_() : "{}");
    } else if (verb == "SIZE") {
      counters_->size.Add();
      RespAppendInteger(out, static_cast<long long>(backend_->Size()));
    } else if (verb == "QUIT") {
      counters_->quit.Add();
      RespAppendSimple(out, "OK");
      after = After::kClose;
    } else {
      counters_->unknown.Add();
      counters_->errors.Add();
      RespAppendError(out, "ERR unknown command '" + command.args[0] + "'");
    }
    if (op_deadline_ns_ > 0) {
      DisarmOpDeadline();
    }
    return after;
  } catch (const OpShedError& shed) {
    // The entry lock could not be acquired within the per-op deadline: shed
    // at the protocol level. The connection stays open and ordered; the
    // client decides whether to retry.
    if (op_deadline_ns_ > 0) {
      DisarmOpDeadline();
    }
    counters_->busy.Add();
    RespAppendError(out, std::string("BUSY ") + shed.what());
    return After::kContinue;
  }
}

}  // namespace lockin
