// NetServe wire codec: a RESP-style text protocol for the Scenario API.
//
// Requests arrive either as RESP arrays of bulk strings
// (`*2\r\n$3\r\nGET\r\n$3\r\nfoo\r\n`, the pipelining-friendly form loadgen
// emits -- values may contain any byte, NUL included) or as memcached-style
// inline lines (`GET foo\r\n`, handy for netcat-debugging a live server).
// Replies are RESP: `+OK`, `-ERR msg`, `:42`, `$5\r\nhello`, `$-1` (nil).
//
// Both parsers here are *incremental*: bytes are fed as they come off the
// socket, in any fragmentation -- a frame torn at every byte boundary, or
// a hundred pipelined frames in one read -- and commands/replies pop out
// exactly when complete. Malformed or oversized input turns the parser
// into a terminal error state *before* the offending payload is buffered
// (a `$999999999` header is rejected from the header alone), so a hostile
// peer cannot blow up allocation; RespLimits bounds every dimension.
#ifndef SRC_NET_RESP_HPP_
#define SRC_NET_RESP_HPP_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lockin {

// One parsed request: args[0] is the verb (case preserved; dispatch is
// case-insensitive), the rest its arguments. Values are raw byte strings.
struct RespCommand {
  std::vector<std::string> args;
};

enum class RespParseStatus : std::uint8_t {
  kNeedMore,  // no complete frame buffered yet; feed more bytes
  kCommand,   // *out holds the next command / reply
  kError,     // protocol error; the connection should report it and close
};

// Caps applied while parsing. Exceeding any of them is a protocol error
// raised from the *header* (or from the running line length), never after
// buffering the oversized payload.
struct RespLimits {
  std::size_t max_inline_bytes = 8 * 1024;        // one inline command line
  std::size_t max_args = 64;                      // elements per RESP array
  std::size_t max_bulk_bytes = 1 * 1024 * 1024;   // one argument's payload
  std::size_t max_command_bytes = 4 * 1024 * 1024;  // whole buffered frame
};

// Incremental request parser (server side).
class RespParser {
 public:
  explicit RespParser(RespLimits limits = {}) : limits_(limits) {}

  // Appends raw bytes read from the wire. Cheap; parsing happens in Next.
  void Feed(std::string_view data);

  // Pops the next complete command. kCommand fills *out (clearing previous
  // contents); kError fills *error and latches: every later call returns
  // the same error, and further Feed bytes are dropped.
  RespParseStatus Next(RespCommand* out, std::string* error);

  // Bytes buffered but not yet consumed by a complete command.
  std::size_t buffered_bytes() const { return buffer_.size() - consumed_; }
  bool broken() const { return broken_; }

 private:
  RespParseStatus FailWith(std::string* error, const std::string& message);

  RespLimits limits_;
  std::string buffer_;
  std::size_t consumed_ = 0;  // parsed-and-delivered prefix of buffer_
  bool broken_ = false;
  std::string error_;
};

// One parsed reply (client side).
struct RespReply {
  enum class Type : std::uint8_t { kSimple, kError, kInteger, kBulk, kNil };
  Type type = Type::kSimple;
  std::string text;        // simple/error/bulk payload
  long long integer = 0;   // kInteger value

  bool IsBusy() const {
    return type == Type::kError && text.rfind("BUSY", 0) == 0;
  }
};

// Incremental reply parser (client side: loadgen, tests).
class RespReplyParser {
 public:
  explicit RespReplyParser(RespLimits limits = {}) : limits_(limits) {}

  void Feed(std::string_view data);
  RespParseStatus Next(RespReply* out, std::string* error);

  std::size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  RespParseStatus FailWith(std::string* error, const std::string& message);

  RespLimits limits_;
  std::string buffer_;
  std::size_t consumed_ = 0;
  bool broken_ = false;
  std::string error_;
};

// --- Reply / request encoders ------------------------------------------------

void RespAppendSimple(std::string* out, std::string_view text);    // +text
void RespAppendError(std::string* out, std::string_view message);  // -message
void RespAppendInteger(std::string* out, long long value);         // :value
void RespAppendBulk(std::string* out, std::string_view data);      // $len CRLF data
void RespAppendNil(std::string* out);                              // $-1

// Client-side request encoder: one RESP array of bulk strings. Round-trips
// through RespParser bit-exactly for any byte content.
void RespAppendCommand(std::string* out, const std::vector<std::string>& args);

}  // namespace lockin

#endif  // SRC_NET_RESP_HPP_
