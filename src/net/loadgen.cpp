#include "src/net/loadgen.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <deque>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/net/channel.hpp"
#include "src/net/resp.hpp"
#include "src/platform/json.hpp"

namespace lockin {
namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct ClientConn {
  int fd = -1;
  RespReplyParser parser;
  std::string outbox;
  std::size_t out_off = 0;
  std::deque<std::uint64_t> sent_ns;  // enqueue timestamp per in-flight request
  std::uint64_t next_due_ns = 0;      // rate mode: next scheduled send
  bool dead = false;

  std::size_t inflight() const { return sent_ns.size(); }
  bool has_output() const { return out_off < outbox.size(); }
};

struct WorkerStats {
  std::uint64_t requests = 0;
  std::uint64_t busy = 0;
  std::uint64_t errors = 0;
  std::uint64_t not_found = 0;
  LatencyHistogram latency_ns;
};

void RunWorker(const LoadgenOptions& options, std::size_t thread_index,
               std::size_t conn_count, WorkerStats* stats) {
  const std::size_t pipeline = std::max<std::size_t>(1, options.pipeline);
  std::mt19937_64 rng(options.seed + 0x9e3779b97f4a7c15ULL * (thread_index + 1));
  const std::string value(std::max<std::size_t>(1, options.value_bytes), 'v');

  std::vector<ClientConn> conns(conn_count);
  for (ClientConn& conn : conns) {
    conn.fd = ConnectLoopback(options.port);
    if (conn.fd < 0) {
      conn.dead = true;
      stats->errors += 1;
      continue;
    }
    fcntl(conn.fd, F_SETFL, fcntl(conn.fd, F_GETFL, 0) | O_NONBLOCK);
  }

  const std::uint64_t start_ns = NowNs();
  const std::uint64_t send_until_ns = start_ns + options.duration_ms * 1000000ULL;
  const std::uint64_t drain_until_ns = send_until_ns + 5ULL * 1000000000ULL;
  // Rate mode: the global offered rate is striped over every connection.
  const std::uint64_t total_conns =
      std::max<std::uint64_t>(1, options.connections);
  const std::uint64_t per_conn_interval_ns =
      options.rate_per_s > 0
          ? std::max<std::uint64_t>(1, 1000000000ULL * total_conns / options.rate_per_s)
          : 0;
  for (ClientConn& conn : conns) {
    conn.next_due_ns = start_ns;
  }

  std::vector<std::string> args;
  const auto enqueue = [&](ClientConn& conn) {
    args.clear();
    const std::uint64_t key = rng() % std::max<std::uint64_t>(1, options.key_space);
    if (static_cast<int>(rng() % 100) < options.get_percent) {
      args.push_back("GET");
      args.push_back(std::to_string(key));
    } else {
      args.push_back("SET");
      args.push_back(std::to_string(key));
      args.push_back(value);
    }
    RespAppendCommand(&conn.outbox, args);
    conn.sent_ns.push_back(NowNs());
  };

  std::vector<pollfd> pollfds(conns.size());
  std::vector<char> read_buf(64 * 1024);
  RespReply reply;
  std::string parse_error;

  for (;;) {
    const std::uint64_t now = NowNs();

    // Top up the offered load: saturation keeps `pipeline` in flight,
    // rate mode follows the per-connection schedule open-loop (a late
    // reply does not delay the next send).
    std::size_t live = 0;
    std::size_t inflight_total = 0;
    if (now < send_until_ns) {
      for (ClientConn& conn : conns) {
        if (conn.dead) {
          continue;
        }
        if (per_conn_interval_ns == 0) {
          while (conn.inflight() < pipeline) {
            enqueue(conn);
          }
        } else {
          while (conn.next_due_ns <= now) {
            enqueue(conn);
            conn.next_due_ns += per_conn_interval_ns;
          }
        }
      }
    }
    for (std::size_t i = 0; i < conns.size(); ++i) {
      ClientConn& conn = conns[i];
      pollfds[i].fd = conn.dead ? -1 : conn.fd;  // poll ignores negative fds
      pollfds[i].events = static_cast<short>(POLLIN | (conn.has_output() ? POLLOUT : 0));
      pollfds[i].revents = 0;
      if (!conn.dead) {
        ++live;
        inflight_total += conn.inflight();
      }
    }
    if (live == 0) {
      break;
    }
    if (now >= send_until_ns && inflight_total == 0) {
      break;
    }
    if (now >= drain_until_ns) {
      stats->errors += inflight_total;  // replies the server never delivered
      break;
    }

    (void)poll(pollfds.data(), pollfds.size(), /*timeout_ms=*/10);

    for (std::size_t i = 0; i < conns.size(); ++i) {
      ClientConn& conn = conns[i];
      if (conn.dead || pollfds[i].revents == 0) {
        continue;
      }
      if ((pollfds[i].revents & POLLOUT) != 0 && conn.has_output()) {
        const ssize_t n = write(conn.fd, conn.outbox.data() + conn.out_off,
                                conn.outbox.size() - conn.out_off);
        if (n > 0) {
          conn.out_off += static_cast<std::size_t>(n);
          if (!conn.has_output()) {
            conn.outbox.clear();
            conn.out_off = 0;
          }
        } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
          conn.dead = true;
          stats->errors += 1;
          continue;
        }
      }
      if ((pollfds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        const ssize_t n = read(conn.fd, read_buf.data(), read_buf.size());
        if (n > 0) {
          conn.parser.Feed(std::string_view(read_buf.data(), static_cast<std::size_t>(n)));
          const std::uint64_t recv_ns = NowNs();
          for (;;) {
            const RespParseStatus status = conn.parser.Next(&reply, &parse_error);
            if (status == RespParseStatus::kNeedMore) {
              break;
            }
            if (status == RespParseStatus::kError) {
              conn.dead = true;
              stats->errors += 1;
              break;
            }
            if (!conn.sent_ns.empty()) {
              stats->latency_ns.Record(recv_ns - conn.sent_ns.front());
              conn.sent_ns.pop_front();
            }
            stats->requests += 1;
            if (reply.type == RespReply::Type::kNil) {
              stats->not_found += 1;
            } else if (reply.IsBusy()) {
              stats->busy += 1;
            } else if (reply.type == RespReply::Type::kError) {
              stats->errors += 1;
            }
          }
        } else if (n == 0) {
          conn.dead = true;  // server closed (drain); in-flight counted at exit
        } else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
          conn.dead = true;
          stats->errors += 1;
        }
      }
    }
  }

  for (ClientConn& conn : conns) {
    if (conn.fd >= 0) {
      close(conn.fd);
    }
  }
}

}  // namespace

LoadgenResult RunLoadgen(const LoadgenOptions& options) {
  const std::size_t threads = std::max<std::size_t>(1, options.threads);
  const std::size_t connections = std::max<std::size_t>(1, options.connections);
  std::vector<WorkerStats> stats(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const std::uint64_t start_ns = NowNs();
  for (std::size_t t = 0; t < threads; ++t) {
    // Stripe connections over threads; thread 0 takes the remainder.
    std::size_t count = connections / threads + (t < connections % threads ? 1 : 0);
    if (count == 0) {
      continue;
    }
    workers.emplace_back(RunWorker, std::cref(options), t, count, &stats[t]);
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  LoadgenResult result;
  result.seconds = static_cast<double>(NowNs() - start_ns) / 1e9;
  for (const WorkerStats& s : stats) {
    result.requests += s.requests;
    result.busy += s.busy;
    result.errors += s.errors;
    result.not_found += s.not_found;
    result.latency_ns.Merge(s.latency_ns);
  }
  return result;
}

std::string LoadgenResult::ToJson() const {
  std::ostringstream out;
  const auto us = [](std::uint64_t ns) { return static_cast<double>(ns) / 1000.0; };
  out << "{";
  WriteJsonString(out, "requests");
  out << ": " << requests << ", ";
  WriteJsonString(out, "requests_per_s");
  out << ": " << RequestsPerS() << ", ";
  WriteJsonString(out, "seconds");
  out << ": " << seconds << ", ";
  WriteJsonString(out, "busy");
  out << ": " << busy << ", ";
  WriteJsonString(out, "errors");
  out << ": " << errors << ", ";
  WriteJsonString(out, "not_found");
  out << ": " << not_found << ", ";
  WriteJsonString(out, "latency_us");
  out << ": {";
  WriteJsonString(out, "mean");
  out << ": " << us(static_cast<std::uint64_t>(latency_ns.Mean())) << ", ";
  WriteJsonString(out, "p50");
  out << ": " << us(latency_ns.P50()) << ", ";
  WriteJsonString(out, "p99");
  out << ": " << us(latency_ns.P99()) << ", ";
  WriteJsonString(out, "max");
  out << ": " << us(latency_ns.max());
  out << "}}";
  return out.str();
}

}  // namespace lockin
