#include "src/net/server.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "src/analysis/lockdep.hpp"
#include "src/platform/failpoint.hpp"

namespace lockin {

// --- Internal state ----------------------------------------------------------

struct LockServer::Client {
  Client(EventLoop& loop, int fd, Connection::Options conn_options, RespLimits limits)
      : conn(loop, fd, conn_options), parser(limits) {}
  Connection conn;
  RespParser parser;
  std::string reply;  // batch buffer: one Send per read chunk
};

struct LockServer::Worker {
  std::size_t index = 0;
  EventLoop loop;
  std::thread thread;
  // Owned by the worker, touched only on its loop thread.
  std::unordered_map<Client*, std::unique_ptr<Client>> clients;
  bool draining = false;
};

struct LockServer::Stats {
  explicit Stats(MetricsRegistry* registry)
      : accepted(registry->Counter("net.conn.accepted")),
        closed(registry->Counter("net.conn.closed")),
        requests(registry->Counter("net.requests")),
        replies(registry->Counter("net.replies")),
        protocol_errors(registry->Counter("net.protocol_errors")),
        bytes_in(registry->Counter("net.bytes.in")),
        bytes_out(registry->Counter("net.bytes.out")),
        active(registry->Gauge("net.conn.active")),
        service_ns(registry->Histogram("net.service_ns")) {}

  MetricCounter& accepted;
  MetricCounter& closed;
  MetricCounter& requests;
  MetricCounter& replies;
  MetricCounter& protocol_errors;
  MetricCounter& bytes_in;
  MetricCounter& bytes_out;
  MetricGauge& active;
  MetricHistogram& service_ns;
};

// --- Lifecycle ---------------------------------------------------------------

LockServer::LockServer(const NetServerOptions& options)
    : options_(options),
      stats_(std::make_unique<Stats>(&metrics_)),
      dispatcher_(std::make_unique<CommandDispatcher>(
          options.backend, &metrics_, [this] { return StatsJson(); })) {}

LockServer::~LockServer() {
  Stop();
  Join();
}

void LockServer::Start() {
  if (started_.exchange(true)) {
    return;
  }
  const std::size_t worker_count = std::max<std::size_t>(1, options_.workers);
  workers_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->index = i;
    workers_.push_back(std::move(worker));
  }
  // Bind + register before any loop runs: EventLoop::Add is loop-thread-only
  // once Run starts, and this ordering guarantees port() is valid on return.
  listener_ = std::make_unique<Listener>(workers_[0]->loop, options_.port);
  port_ = listener_->port();
  listener_->Start([this](int fd) { AcceptFd(fd); });
  for (std::unique_ptr<Worker>& worker : workers_) {
    Worker* w = worker.get();
    w->thread = std::thread([w] { w->loop.Run(); });
  }
  if (options_.watchdog_ms > 0) {
    watchdog_ = std::thread([this] { WatchdogMain(); });
  }
}

void LockServer::Drain() {
  if (!started_.load() || draining_.exchange(true)) {
    return;
  }
  for (std::unique_ptr<Worker>& worker : workers_) {
    Worker* w = worker.get();
    w->loop.Post([this, w] {
      if (w->index == 0 && listener_) {
        listener_->Close();
      }
      w->draining = true;
      std::vector<Client*> clients;
      clients.reserve(w->clients.size());
      for (const auto& entry : w->clients) {
        clients.push_back(entry.first);
      }
      for (Client* client : clients) {
        if (w->clients.count(client) != 0) {
          client->conn.DrainAndClose();  // may erase `client` via on_close
        }
      }
      if (w->clients.empty()) {
        w->loop.Stop();
      }
      // Otherwise the loop stops from OnClose once the last connection
      // finishes flushing (a drained connection with pending output keeps
      // EPOLLOUT armed until the client reads its replies).
    });
  }
}

void LockServer::Stop() {
  if (!started_.load()) {
    return;
  }
  draining_.store(true);  // refuse adoptions racing the shutdown
  for (std::unique_ptr<Worker>& worker : workers_) {
    Worker* w = worker.get();
    w->loop.Post([this, w] {
      if (w->index == 0 && listener_) {
        listener_->Close();
      }
      w->draining = true;
      std::vector<Client*> clients;
      clients.reserve(w->clients.size());
      for (const auto& entry : w->clients) {
        clients.push_back(entry.first);
      }
      for (Client* client : clients) {
        if (w->clients.count(client) != 0) {
          client->conn.CloseNow();
        }
      }
      w->loop.Stop();
    });
  }
}

void LockServer::Join() {
  if (!started_.load() || joined_.exchange(true)) {
    return;
  }
  for (std::unique_ptr<Worker>& worker : workers_) {
    if (worker->thread.joinable()) {
      worker->thread.join();
    }
  }
  watchdog_stop_.store(true);
  if (watchdog_.joinable()) {
    watchdog_.join();
  }
}

std::string LockServer::StatsJson() const {
  std::ostringstream out;
  metrics_.WriteJson(out);
  return out.str();
}

// --- Accept path -------------------------------------------------------------

void LockServer::AcceptFd(int fd) {
  if (draining_.load()) {
    close(fd);
    return;
  }
  const std::size_t target =
      next_worker_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  Worker* w = workers_[target].get();
  if (target == 0) {
    AdoptConnection(*w, fd);  // already on worker 0's loop thread
  } else {
    w->loop.Post([this, w, fd] { AdoptConnection(*w, fd); });
  }
}

void LockServer::AdoptConnection(Worker& worker, int fd) {
  if (draining_.load() || worker.draining) {
    close(fd);
    return;
  }
  auto owned = std::make_unique<Client>(worker.loop, fd, options_.conn, options_.limits);
  Client* client = owned.get();
  worker.clients.emplace(client, std::move(owned));
  stats_->accepted.Add();
  stats_->active.Set(
      static_cast<double>(active_conns_.fetch_add(1, std::memory_order_relaxed) + 1));
  client->conn.Start(
      [this, &worker, client](std::string_view data) { OnData(worker, client, data); },
      [this, &worker, client] { OnClose(worker, client); });
}

// --- Per-connection service --------------------------------------------------

void LockServer::OnData(Worker& worker, Client* client, std::string_view data) {
  (void)worker;
  client->parser.Feed(data);
  client->reply.clear();
  RespCommand command;
  std::string parse_error;
  bool close_after = false;
  for (;;) {
    const RespParseStatus status = client->parser.Next(&command, &parse_error);
    if (status == RespParseStatus::kNeedMore) {
      break;
    }
    if (status == RespParseStatus::kError) {
      // One diagnostic reply, then close: the byte stream is unframeable
      // from here, so continuing would misparse everything after it.
      stats_->protocol_errors.Add();
      RespAppendError(&client->reply, "ERR protocol error: " + parse_error);
      close_after = true;
      break;
    }
    stats_->requests.Add();
    const auto start = std::chrono::steady_clock::now();
    const CommandDispatcher::After after = dispatcher_->Execute(command, &client->reply);
    stats_->service_ns.Record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
    stats_->replies.Add();
    if (after == CommandDispatcher::After::kClose) {
      close_after = true;
      break;
    }
  }
  if (!client->reply.empty()) {
    client->conn.Send(client->reply);
  }
  if (close_after) {
    client->conn.CloseAfterFlush();
  }
}

void LockServer::OnClose(Worker& worker, Client* client) {
  stats_->closed.Add();
  stats_->bytes_in.Add(client->conn.bytes_in());
  stats_->bytes_out.Add(client->conn.bytes_out());
  stats_->active.Set(
      static_cast<double>(active_conns_.fetch_sub(1, std::memory_order_relaxed) - 1));
  worker.clients.erase(client);  // deletes client (and its Connection)
  if (worker.draining && worker.clients.empty()) {
    worker.loop.Stop();
  }
}

// --- Stall watchdog ----------------------------------------------------------

void LockServer::WatchdogMain() {
  // A healthy loop ticks at least once per second (epoll_wait timeout), so
  // "no tick for ~2s + two check intervals" means a handler is wedged --
  // typically behind a lock. Dump who holds what and the failpoint state,
  // the same forensic surface the scenario driver's watchdog prints.
  const std::uint64_t interval_ms = options_.watchdog_ms;
  const int stall_threshold = static_cast<int>(
      std::max<std::uint64_t>(2, (2000 + 2 * interval_ms + interval_ms - 1) / interval_ms));
  std::vector<std::uint64_t> last_tick(workers_.size(), 0);
  std::vector<int> stalled(workers_.size(), 0);
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    last_tick[i] = workers_[i]->loop.ticks();
  }
  std::uint64_t slept_ms = 0;
  while (!watchdog_stop_.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    slept_ms += 50;
    if (slept_ms < interval_ms) {
      continue;
    }
    slept_ms = 0;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      const std::uint64_t tick = workers_[i]->loop.ticks();
      if (tick != last_tick[i]) {
        last_tick[i] = tick;
        stalled[i] = 0;
        continue;
      }
      if (++stalled[i] < stall_threshold) {
        continue;
      }
      stalled[i] = 0;  // re-arm: report once per stall window
      std::fprintf(stderr,
                   "lockin net: worker %zu event loop stalled (no tick for ~%d ms)\n",
                   i, stall_threshold * static_cast<int>(interval_ms));
      std::fputs(LockdepHeldDescribe().c_str(), stderr);
      const std::string failpoints = FailpointsReport();
      if (!failpoints.empty()) {
        std::fputs(failpoints.c_str(), stderr);
      }
      std::fflush(stderr);
      if (options_.watchdog_abort) {
        std::abort();
      }
    }
  }
}

}  // namespace lockin
