// NetServe load generator: a pipelined RESP client for lock_server.
//
// Open-loop by construction: every connection keeps `pipeline` requests in
// flight (saturation mode) or emits on a fixed schedule (rate mode), so a
// slow server grows queueing delay instead of silently throttling the
// offered load -- the coordinated-omission-safe way to measure a server
// whose locks are the bottleneck. Latency is measured per request from
// enqueue to reply parse, pipelining included.
//
// This lives in src/ rather than examples/ so the native bench can run
// client and server in one process (bench/bench_native_perf.cpp) while
// examples/loadgen.cpp wraps the same engine behind a CLI.
#ifndef SRC_NET_LOADGEN_HPP_
#define SRC_NET_LOADGEN_HPP_

#include <cstdint>
#include <string>

#include "src/stats/histogram.hpp"

namespace lockin {

struct LoadgenOptions {
  std::uint16_t port = 0;
  std::size_t connections = 4;
  std::size_t pipeline = 8;       // in-flight requests per connection
  std::uint64_t duration_ms = 2000;
  int get_percent = 80;           // GET share; the rest are SETs
  std::uint64_t key_space = 10000;
  std::size_t value_bytes = 64;
  std::uint64_t rate_per_s = 0;   // 0 = saturation; else fixed offered rate
  std::uint64_t seed = 42;
  std::size_t threads = 1;        // client threads; connections are striped
};

struct LoadgenResult {
  std::uint64_t requests = 0;   // replies received (completed requests)
  std::uint64_t busy = 0;       // -BUSY replies (deadline sheds)
  std::uint64_t errors = 0;     // -ERR replies + connection failures
  std::uint64_t not_found = 0;  // nil GETs
  double seconds = 0;
  LatencyHistogram latency_ns;

  double RequestsPerS() const { return seconds > 0 ? requests / seconds : 0; }

  // {"requests": ..., "requests_per_s": ..., "p50_us": ..., ...} via the
  // shared platform JSON helpers.
  std::string ToJson() const;
};

// Runs the load against 127.0.0.1:options.port and blocks until the
// duration elapses and in-flight replies drain. Thread-safe to call
// concurrently with a LockServer running in the same process.
LoadgenResult RunLoadgen(const LoadgenOptions& options);

}  // namespace lockin

#endif  // SRC_NET_LOADGEN_HPP_
