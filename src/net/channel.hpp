// NetServe channel layer: Listener (accept) and Connection (buffered
// bidirectional byte stream) over an EventLoop.
//
// A Connection belongs to exactly one loop; every method except the
// constructor must run on that loop's thread (the server hops threads with
// EventLoop::Post). Reads are chunked into a stack buffer and handed to the
// owner's on_data callback; writes append to an in-memory output buffer
// flushed opportunistically and then via EPOLLOUT.
//
// Backpressure is per connection and byte-bounded: when the unflushed
// output exceeds Options::max_outbound (a slow or stalled reader), the
// connection *stops reading* -- EPOLLIN is dropped, so a pipelining client
// that never drains replies stops being parsed instead of ballooning the
// write queue; reading resumes once the backlog falls under
// Options::resume_outbound. This is the standard proxy/server watermark
// scheme (memcached's conn_nread/write gating, libevent bufferevents).
#ifndef SRC_NET_CHANNEL_HPP_
#define SRC_NET_CHANNEL_HPP_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "src/net/event_loop.hpp"

namespace lockin {

// Accepting socket on the loopback interface. Port 0 binds an ephemeral
// port readable via port() after construction (how tests and the bench get
// a collision-free address).
class Listener {
 public:
  using AcceptFn = std::function<void(int fd)>;  // receives a non-blocking fd

  Listener(EventLoop& loop, std::uint16_t port);
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  void Start(AcceptFn on_accept);
  void Close();  // stop accepting; idempotent

  std::uint16_t port() const { return port_; }

 private:
  EventLoop& loop_;
  int fd_ = -1;
  std::uint16_t port_ = 0;
  AcceptFn on_accept_;
};

class Connection {
 public:
  struct Options {
    std::size_t read_chunk = 16 * 1024;
    // Stop reading above max_outbound of unflushed replies; resume below
    // resume_outbound. resume < max gives hysteresis so a borderline client
    // doesn't flap EPOLLIN on every flushed byte.
    std::size_t max_outbound = 1 << 20;
    std::size_t resume_outbound = 1 << 18;
  };

  // `on_data` receives every chunk read from the peer (called on the loop
  // thread, possibly multiple times per iteration). `on_close` fires
  // exactly once -- peer EOF, error, or Close* -- after the fd is
  // deregistered; the owner usually deletes the connection there.
  using DataFn = std::function<void(std::string_view data)>;
  using CloseFn = std::function<void()>;

  Connection(EventLoop& loop, int fd, Options options);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  void Start(DataFn on_data, CloseFn on_close);

  // Queues bytes for the peer and flushes what the socket accepts now; the
  // rest goes out under EPOLLOUT. Silently drops once closing.
  void Send(std::string_view data);

  // Stops reading, flushes the remaining output, then closes and fires
  // on_close. The graceful path (QUIT, server drain).
  void CloseAfterFlush();

  // Immediate teardown: deregister, close, fire on_close. Pending output is
  // dropped (protocol-error path).
  void CloseNow();

  // Drain support: stop accepting *new* input after the current buffer --
  // the owner decides when to CloseAfterFlush.
  void StopReading();

  // Graceful-drain primitive: one final read pass (everything already in
  // the kernel receive buffer still reaches on_data, so buffered pipelined
  // requests execute and their replies are queued), then CloseAfterFlush.
  // Loop-thread only.
  void DrainAndClose();

  bool reading_paused() const { return !want_read_; }
  std::size_t outbound_bytes() const { return out_.size() - out_offset_; }
  std::uint64_t bytes_in() const { return bytes_in_; }
  std::uint64_t bytes_out() const { return bytes_out_; }
  int fd() const { return fd_; }

 private:
  void HandleEvents(std::uint32_t events);
  void HandleReadable();
  void HandleWritable();
  bool FlushSome();       // returns false when the connection died
  void UpdateInterest();  // recompute the epoll mask from want_read_/output
  void Destroy();

  EventLoop& loop_;
  int fd_;
  Options options_;
  DataFn on_data_;
  CloseFn on_close_;

  std::string read_buf_;       // per-connection read chunk
  std::string out_;            // unflushed output
  std::size_t out_offset_ = 0; // flushed prefix of out_
  bool want_read_ = true;      // effective epoll read interest
  bool want_write_ = false;
  bool read_stopped_ = false;  // explicit StopReading / EOF / closing
  bool paused_ = false;        // backpressure pause (watermark hysteresis)
  bool closing_ = false;       // CloseAfterFlush requested
  bool closed_ = false;
  bool in_callback_ = false;   // defer Destroy while inside HandleEvents
  bool destroy_pending_ = false;
  std::uint64_t bytes_in_ = 0;
  std::uint64_t bytes_out_ = 0;
};

// Creates a connected blocking TCP socket to 127.0.0.1:port with
// TCP_NODELAY set (client side: loadgen, tests; loadgen flips it to
// non-blocking itself). Returns -1 on failure.
int ConnectLoopback(std::uint16_t port);

}  // namespace lockin

#endif  // SRC_NET_CHANNEL_HPP_
