#include "src/net/channel.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace lockin {
namespace {

void SetNoDelay(int fd) {
  // Request/reply benchmarking over loopback: Nagle would serialize
  // pipelined batches behind delayed ACKs.
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

// --- Listener ----------------------------------------------------------------

Listener::Listener(EventLoop& loop, std::uint16_t port) : loop_(loop) {
  fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    throw std::runtime_error("socket() failed");
  }
  const int one = 1;
  setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      listen(fd_, 512) != 0) {
    const int err = errno;
    close(fd_);
    fd_ = -1;
    throw std::runtime_error(std::string("bind/listen on loopback failed: ") +
                             std::strerror(err));
  }
  socklen_t len = sizeof addr;
  getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
}

Listener::~Listener() { Close(); }

void Listener::Start(AcceptFn on_accept) {
  on_accept_ = std::move(on_accept);
  loop_.Add(fd_, EPOLLIN, [this](std::uint32_t) {
    for (;;) {
      const int conn_fd = accept4(fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (conn_fd < 0) {
        return;  // EAGAIN (drained) or transient accept error: wait for epoll
      }
      SetNoDelay(conn_fd);
      on_accept_(conn_fd);
    }
  });
}

void Listener::Close() {
  if (fd_ >= 0) {
    loop_.Remove(fd_);
    close(fd_);
    fd_ = -1;
  }
}

// --- Connection --------------------------------------------------------------

Connection::Connection(EventLoop& loop, int fd, Options options)
    : loop_(loop), fd_(fd), options_(options) {
  read_buf_.resize(options_.read_chunk);
}

Connection::~Connection() {
  if (!closed_) {
    closed_ = true;
    loop_.Remove(fd_);
    close(fd_);
  }
}

void Connection::Start(DataFn on_data, CloseFn on_close) {
  on_data_ = std::move(on_data);
  on_close_ = std::move(on_close);
  loop_.Add(fd_, EPOLLIN, [this](std::uint32_t events) { HandleEvents(events); });
}

void Connection::HandleEvents(std::uint32_t events) {
  if (closed_) {
    return;
  }
  in_callback_ = true;
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    destroy_pending_ = true;
  } else {
    if ((events & EPOLLIN) != 0) {
      HandleReadable();
    }
    if (!destroy_pending_ && (events & EPOLLOUT) != 0) {
      HandleWritable();
    }
    if (!destroy_pending_) {
      UpdateInterest();
    }
  }
  in_callback_ = false;
  if (destroy_pending_) {
    Destroy();  // may delete `this`: return immediately
  }
}

void Connection::HandleReadable() {
  for (;;) {
    const ssize_t n = read(fd_, read_buf_.data(), read_buf_.size());
    if (n > 0) {
      bytes_in_ += static_cast<std::uint64_t>(n);
      on_data_(std::string_view(read_buf_.data(), static_cast<std::size_t>(n)));
      if (closing_ || read_stopped_ || destroy_pending_) {
        return;  // the callback closed or paused us
      }
      // Backpressure: replies queued by on_data past the high watermark stop
      // this read pass; UpdateInterest drops EPOLLIN after the handler.
      if (outbound_bytes() > options_.max_outbound) {
        return;
      }
      continue;
    }
    if (n == 0) {
      // Peer EOF (possibly a half-close: client shutdown(SHUT_WR) and still
      // reads). Finish flushing queued replies, then tear down.
      read_stopped_ = true;
      closing_ = true;
      if (!FlushSome()) {
        return;
      }
      if (outbound_bytes() == 0) {
        destroy_pending_ = true;
      }
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      return;
    }
    destroy_pending_ = true;  // ECONNRESET and friends
    return;
  }
}

void Connection::HandleWritable() {
  if (!FlushSome()) {
    return;
  }
  if (closing_ && outbound_bytes() == 0) {
    destroy_pending_ = true;
  }
}

bool Connection::FlushSome() {
  while (out_offset_ < out_.size()) {
    const ssize_t n = write(fd_, out_.data() + out_offset_, out_.size() - out_offset_);
    if (n > 0) {
      out_offset_ += static_cast<std::size_t>(n);
      bytes_out_ += static_cast<std::uint64_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      return true;
    }
    destroy_pending_ = true;  // EPIPE and friends
    return false;
  }
  out_.clear();
  out_offset_ = 0;
  return true;
}

void Connection::Send(std::string_view data) {
  if (closed_ || destroy_pending_) {
    return;
  }
  out_.append(data);
  // Opportunistic flush when EPOLLOUT is not already armed: the common case
  // writes the whole reply in one syscall and never touches epoll_ctl.
  if (!want_write_) {
    if (!FlushSome()) {
      if (!in_callback_) {
        Destroy();
      }
      return;
    }
  }
  if (!in_callback_) {
    UpdateInterest();
  }
}

void Connection::StopReading() {
  read_stopped_ = true;
  if (!in_callback_ && !closed_) {
    UpdateInterest();
  }
}

void Connection::CloseAfterFlush() {
  if (closed_ || destroy_pending_) {
    return;
  }
  closing_ = true;
  read_stopped_ = true;
  if (!FlushSome()) {
    if (!in_callback_) {
      Destroy();
    }
    return;
  }
  if (outbound_bytes() == 0) {
    if (in_callback_) {
      destroy_pending_ = true;
    } else {
      Destroy();
    }
    return;
  }
  if (!in_callback_) {
    UpdateInterest();  // arm EPOLLOUT for the remaining bytes
  }
}

void Connection::DrainAndClose() {
  if (closed_ || destroy_pending_) {
    return;
  }
  in_callback_ = true;
  HandleReadable();  // consume what the kernel already buffered
  in_callback_ = false;
  if (destroy_pending_) {
    Destroy();
    return;
  }
  CloseAfterFlush();
}

void Connection::CloseNow() {
  if (closed_) {
    return;
  }
  if (in_callback_) {
    destroy_pending_ = true;
    return;
  }
  Destroy();
}

void Connection::UpdateInterest() {
  const std::size_t backlog = outbound_bytes();
  if (!paused_ && backlog > options_.max_outbound) {
    paused_ = true;
  } else if (paused_ && backlog < options_.resume_outbound) {
    paused_ = false;
  }
  const bool want_read = !read_stopped_ && !closing_ && !paused_;
  const bool want_write = backlog > 0;
  if (want_read == want_read_ && want_write == want_write_) {
    return;
  }
  want_read_ = want_read;
  want_write_ = want_write;
  loop_.Update(fd_, (want_read_ ? EPOLLIN : 0u) | (want_write_ ? EPOLLOUT : 0u));
}

void Connection::Destroy() {
  if (closed_) {
    return;
  }
  closed_ = true;
  loop_.Remove(fd_);
  close(fd_);
  const CloseFn on_close = std::move(on_close_);
  if (on_close) {
    on_close();  // may delete `this`; touch nothing afterwards
  }
}

int ConnectLoopback(std::uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    close(fd);
    return -1;
  }
  SetNoDelay(fd);
  return fd;
}

}  // namespace lockin
