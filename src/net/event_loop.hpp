// NetServe core: a single-threaded epoll event loop.
//
// One EventLoop per worker thread (the memcached/redis shape): every fd
// registered with a loop is serviced only by that loop's thread, so
// per-connection state needs no locking -- cross-thread work enters
// through Post(), which enqueues a task and wakes the loop via an eventfd.
// epoll runs level-triggered: a handler that leaves bytes unread or a
// write buffer unflushed is simply called again, which is what lets a
// backpressured connection stop reading (drop EPOLLIN) without any
// edge-triggered starvation bookkeeping.
#ifndef SRC_NET_EVENT_LOOP_HPP_
#define SRC_NET_EVENT_LOOP_HPP_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace lockin {

class EventLoop {
 public:
  // Called with the ready epoll event mask (EPOLLIN/EPOLLOUT/EPOLLHUP/...).
  using IoHandler = std::function<void(std::uint32_t events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // fd registration. Loop-thread only (or before Run starts). Remove does
  // not close the fd; handlers for in-flight events of a removed fd are
  // skipped safely.
  void Add(int fd, std::uint32_t events, IoHandler handler);
  void Update(int fd, std::uint32_t events);
  void Remove(int fd);

  // Runs until Stop(). The calling thread becomes the loop thread.
  void Run();

  // Thread-safe: requests the loop to exit after the current iteration.
  void Stop();

  // Thread-safe: runs `task` on the loop thread (immediately-queued; the
  // eventfd wakeup makes a blocked epoll_wait return). Tasks posted from
  // the loop thread itself run at the end of the current iteration.
  void Post(std::function<void()> task);

  bool IsLoopThread() const { return std::this_thread::get_id() == loop_thread_; }

  // Monotone count of loop iterations; the server's stall watchdog reads
  // it cross-thread to tell "blocked in epoll_wait" from "wedged handler".
  std::uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

  // Number of registered fds (wakeup eventfd excluded). Loop-thread only.
  std::size_t handler_count() const { return handlers_.size() - 1; }

 private:
  void Wake();
  void DrainWake();
  void RunPostedTasks();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> ticks_{0};
  std::thread::id loop_thread_;

  // shared_ptr per handler: the dispatch loop copies the pointer before
  // invoking, so a handler that removes its own (or a sibling's) fd during
  // the same iteration never frees a std::function mid-call.
  std::unordered_map<int, std::shared_ptr<IoHandler>> handlers_;

  std::mutex tasks_mu_;
  std::vector<std::function<void()>> tasks_;
};

}  // namespace lockin

#endif  // SRC_NET_EVENT_LOOP_HPP_
