// Energy measurement interface.
//
// The paper uses Intel RAPL counters to measure package and DRAM energy
// (section 2). On hosts with RAPL we read the same counters via powercap
// sysfs (RaplMeter); elsewhere a calibrated model integrates power over
// observed thread activity (ModelMeter). Benchmarks program against this
// interface and never care which backend is live.
#ifndef SRC_ENERGY_ENERGY_METER_HPP_
#define SRC_ENERGY_ENERGY_METER_HPP_

#include <cstdint>
#include <memory>
#include <string>

namespace lockin {

// Energy consumed between Start() and Stop().
struct EnergySample {
  double package_joules = 0.0;  // processor package(s), cores included
  double dram_joules = 0.0;
  double seconds = 0.0;

  double total_joules() const { return package_joules + dram_joules; }
  double average_watts() const { return seconds > 0 ? total_joules() / seconds : 0.0; }

  // Throughput-per-power (TPP, operations/Joule): the paper's primary
  // energy-efficiency metric. `operations` is the work completed during the
  // sample window.
  double Tpp(double operations) const {
    return total_joules() > 0 ? operations / total_joules() : 0.0;
  }

  // Energy-per-operation (EPO, Joule/operation); TPP = 1/EPO.
  double Epo(double operations) const {
    return operations > 0 ? total_joules() / operations : 0.0;
  }
};

class EnergyMeter {
 public:
  virtual ~EnergyMeter() = default;

  virtual void Start() = 0;
  virtual EnergySample Stop() = 0;

  // Human-readable backend name ("rapl", "model").
  virtual std::string Name() const = 0;
};

}  // namespace lockin

#endif  // SRC_ENERGY_ENERGY_METER_HPP_
