#include "src/energy/rapl_meter.hpp"

#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>

namespace lockin {
namespace {

constexpr char kPowercapRoot[] = "/sys/class/powercap";

std::string ReadLine(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (in) {
    std::getline(in, line);
  }
  return line;
}

// Sysfs reads can yield empty or non-numeric text (permission-restricted
// files, hardware quirks). Parse defensively instead of std::stoull, which
// throws and would take the whole benchmark down over a bad counter file.
bool ParseCounter(const std::string& text, std::uint64_t* out) {
  if (text.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || errno == ERANGE) {
    return false;
  }
  *out = value;
  return true;
}

}  // namespace

std::uint64_t RaplMeter::ReadCounter(const std::string& path) {
  std::uint64_t value = 0;
  ParseCounter(ReadLine(path), &value);
  return value;  // 0 on unreadable/garbage; Stop() then reports 0 joules
}

std::vector<RaplMeter::Domain> RaplMeter::DiscoverDomains() {
  std::vector<Domain> domains;
  std::error_code ec;
  std::filesystem::directory_iterator it(kPowercapRoot, ec);
  if (ec) {
    return domains;
  }
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("intel-rapl:", 0) != 0) {
      continue;
    }
    const std::string energy_path = entry.path().string() + "/energy_uj";
    // A domain counts as usable only if energy_uj opens AND parses as a
    // number: powercap being *present* but root-only (open fails, or opens
    // and reads empty) is the common unprivileged-host case, and such
    // domains must not make Available() claim RAPL works.
    std::uint64_t probe_value = 0;
    if (!ParseCounter(ReadLine(energy_path), &probe_value)) {
      continue;
    }
    Domain d;
    d.energy_path = energy_path;
    ParseCounter(ReadLine(entry.path().string() + "/max_energy_range_uj"), &d.max_range_uj);
    const std::string domain_name = ReadLine(entry.path().string() + "/name");
    d.is_dram = domain_name.find("dram") != std::string::npos;
    domains.push_back(std::move(d));
  }
  return domains;
}

bool RaplMeter::Available() {
  for (const Domain& d : DiscoverDomains()) {
    if (!d.is_dram) {
      return true;
    }
  }
  return false;
}

bool RaplMeter::PowercapPresent() {
  std::error_code ec;
  std::filesystem::directory_iterator it(kPowercapRoot, ec);
  if (ec) {
    return false;
  }
  for (const auto& entry : it) {
    if (entry.path().filename().string().rfind("intel-rapl:", 0) == 0) {
      return true;
    }
  }
  return false;
}

RaplMeter::RaplMeter() : domains_(DiscoverDomains()) {}

void RaplMeter::Start() {
  for (Domain& d : domains_) {
    d.start_uj = ReadCounter(d.energy_path);
  }
  start_time_ = std::chrono::steady_clock::now();
}

EnergySample RaplMeter::Stop() {
  EnergySample sample;
  const auto now = std::chrono::steady_clock::now();
  sample.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(now - start_time_).count();
  for (Domain& d : domains_) {
    const std::uint64_t end_uj = ReadCounter(d.energy_path);
    std::uint64_t delta;
    if (end_uj >= d.start_uj) {
      delta = end_uj - d.start_uj;
    } else {
      // Counter wrapped; max_energy_range_uj is the modulus.
      delta = d.max_range_uj > 0 ? (d.max_range_uj - d.start_uj) + end_uj : 0;
    }
    const double joules = static_cast<double>(delta) * 1e-6;
    if (d.is_dram) {
      sample.dram_joules += joules;
    } else {
      sample.package_joules += joules;
    }
  }
  return sample;
}

}  // namespace lockin
