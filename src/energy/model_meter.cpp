#include "src/energy/model_meter.hpp"

#include <cstdio>

#include "src/energy/rapl_meter.hpp"

namespace lockin {

ActivityRegistry::ActivityRegistry(PowerModel model)
    : model_(std::move(model)),
      states_(model_.topology().total_contexts(), ActivityState::kInactive),
      last_transition_(std::chrono::steady_clock::now()) {}

void ActivityRegistry::AccumulateLocked(std::chrono::steady_clock::time_point now) {
  const double dt =
      std::chrono::duration_cast<std::chrono::duration<double>>(now - last_transition_).count();
  if (dt > 0) {
    const PowerModel::Breakdown watts = model_.ComponentWatts(states_, {});
    totals_.package_joules += watts.package_w * dt;
    totals_.dram_joules += watts.dram_w * dt;
    totals_.seconds += dt;
  }
  last_transition_ = now;
}

void ActivityRegistry::SetState(int ctx, ActivityState state) {
  std::lock_guard<std::mutex> guard(mu_);
  AccumulateLocked(std::chrono::steady_clock::now());
  if (ctx >= 0 && ctx < static_cast<int>(states_.size())) {
    states_[ctx] = state;
  }
}

ActivityRegistry::Totals ActivityRegistry::Snapshot() {
  std::lock_guard<std::mutex> guard(mu_);
  AccumulateLocked(std::chrono::steady_clock::now());
  return totals_;
}

void ActivityRegistry::ResetEnergy() {
  std::lock_guard<std::mutex> guard(mu_);
  AccumulateLocked(std::chrono::steady_clock::now());
  totals_ = Totals{};
}

ModelMeter::ModelMeter(std::shared_ptr<ActivityRegistry> registry)
    : registry_(std::move(registry)) {}

void ModelMeter::Start() { start_ = registry_->Snapshot(); }

EnergySample ModelMeter::Stop() {
  const ActivityRegistry::Totals end = registry_->Snapshot();
  EnergySample sample;
  sample.package_joules = end.package_joules - start_.package_joules;
  sample.dram_joules = end.dram_joules - start_.dram_joules;
  sample.seconds = end.seconds - start_.seconds;
  return sample;
}

std::unique_ptr<EnergyMeter> MakeDefaultMeter(std::shared_ptr<ActivityRegistry> registry) {
  if (RaplMeter::Available()) {
    return std::make_unique<RaplMeter>();
  }
  // Graceful degradation, explained once per process: powercap nodes that
  // exist but are root-only are the usual unprivileged-host case, and a
  // silent model fallback there would look like "RAPL numbers" to a reader
  // of the output.
  static const bool logged = [] {
    if (RaplMeter::PowercapPresent()) {
      std::fprintf(stderr,
                   "lockin: powercap sysfs is present but no RAPL domain is readable "
                   "(usually needs root); falling back to the model energy meter\n");
    }
    return true;
  }();
  (void)logged;
  if (registry != nullptr) {
    return std::make_unique<ModelMeter>(std::move(registry));
  }
  return nullptr;
}

}  // namespace lockin
