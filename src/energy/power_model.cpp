#include "src/energy/power_model.hpp"

#include <algorithm>

namespace lockin {

const char* ActivityStateName(ActivityState state) {
  switch (state) {
    case ActivityState::kInactive:
      return "inactive";
    case ActivityState::kSleeping:
      return "sleeping";
    case ActivityState::kDeepSleep:
      return "deep-sleep";
    case ActivityState::kWorking:
      return "working";
    case ActivityState::kCritical:
      return "critical";
    case ActivityState::kSpinGlobal:
      return "spin-global";
    case ActivityState::kSpinLocal:
      return "spin-local";
    case ActivityState::kSpinPause:
      return "spin-pause";
    case ActivityState::kSpinMbar:
      return "spin-mbar";
    case ActivityState::kSpinDvfsMin:
      return "spin-dvfs-min";
    case ActivityState::kMwait:
      return "mwait";
    case ActivityState::kKernel:
      return "kernel";
  }
  return "unknown";
}

namespace {

bool IsContextActive(ActivityState state) {
  switch (state) {
    case ActivityState::kInactive:
    case ActivityState::kSleeping:
    case ActivityState::kDeepSleep:
      return false;
    default:
      return true;
  }
}

}  // namespace

PowerModel::PowerModel(Topology topology, PowerParams params)
    : topology_(std::move(topology)), params_(params) {}

double PowerModel::ActivityFactor(ActivityState state) const {
  switch (state) {
    case ActivityState::kInactive:
    case ActivityState::kSleeping:
    case ActivityState::kDeepSleep:
      return 0.0;
    case ActivityState::kWorking:
      return params_.factor_working;
    case ActivityState::kCritical:
      return params_.factor_critical;
    case ActivityState::kSpinGlobal:
      return params_.factor_spin_global;
    case ActivityState::kSpinLocal:
      return params_.factor_spin_local;
    case ActivityState::kSpinPause:
      return params_.factor_spin_pause;
    case ActivityState::kSpinMbar:
      return params_.factor_spin_mbar;
    case ActivityState::kSpinDvfsMin:
      // The DVFS state's reduction comes from the min-VF core power, not the
      // activity factor; it spins like local spinning otherwise.
      return params_.factor_spin_local;
    case ActivityState::kMwait:
      return params_.factor_mwait;
    case ActivityState::kKernel:
      return params_.factor_kernel;
  }
  return 0.0;
}

PowerModel::Breakdown PowerModel::ComponentWatts(const std::vector<ActivityState>& states,
                                                 const std::vector<VfSetting>& vf) const {
  const int contexts = topology_.total_contexts();
  const auto& cpus = topology_.cpus();

  auto state_of = [&](int ctx) {
    return ctx < static_cast<int>(states.size()) ? states[ctx] : ActivityState::kInactive;
  };
  auto vf_of = [&](int ctx) {
    if (state_of(ctx) == ActivityState::kSpinDvfsMin) {
      return VfSetting::kMin;
    }
    return ctx < static_cast<int>(vf.size()) ? vf[ctx] : VfSetting::kMax;
  };

  // Hyper-threads of a core share the *higher* VF point (section 4.2), and
  // an inactive sibling counts as high: lowering one context's VF "will
  // have no effect unless the second hyper-thread has the same or lower VF
  // setting". A core runs at min VF only when every one of its contexts
  // requests min. Keyed by socket * cores_per_socket + core.
  const int cores_total = topology_.total_cores();
  std::vector<int> active_contexts_on_core(cores_total, 0);
  std::vector<VfSetting> core_vf(cores_total, VfSetting::kMin);
  std::vector<bool> socket_active(topology_.sockets(), false);

  for (int ctx = 0; ctx < contexts && ctx < static_cast<int>(cpus.size()); ++ctx) {
    const CpuInfo& cpu = cpus[ctx];
    const int core_key = cpu.socket * topology_.cores_per_socket() + cpu.core;
    if (vf_of(ctx) == VfSetting::kMax) {
      core_vf[core_key] = VfSetting::kMax;  // higher request (or idle) wins
    }
    if (!IsContextActive(state_of(ctx))) {
      continue;
    }
    active_contexts_on_core[core_key]++;
    socket_active[cpu.socket] = true;
  }

  Breakdown result;
  result.package_w = params_.idle_package_w;
  result.dram_w = params_.idle_dram_w;

  for (int socket = 0; socket < topology_.sockets(); ++socket) {
    if (socket_active[socket]) {
      // Uncore activation at the socket's max VF among active cores.
      bool any_max = false;
      for (int core = 0; core < topology_.cores_per_socket(); ++core) {
        const int key = socket * topology_.cores_per_socket() + core;
        if (active_contexts_on_core[key] > 0 && core_vf[key] == VfSetting::kMax) {
          any_max = true;
        }
      }
      result.package_w += any_max ? params_.uncore_active_w_max : params_.uncore_active_w_min;
    }
  }

  // Per-context dynamic power. The first context of a core pays the core
  // wake-up power; additional hyper-threads pay the (smaller) SMT power.
  std::vector<int> seen_on_core(cores_total, 0);
  for (int ctx = 0; ctx < contexts && ctx < static_cast<int>(cpus.size()); ++ctx) {
    const CpuInfo& cpu = cpus[ctx];
    const ActivityState state = state_of(ctx);
    if (!IsContextActive(state)) {
      if (state == ActivityState::kSleeping || state == ActivityState::kDeepSleep) {
        result.package_w += params_.sleeping_thread_w;
      }
      continue;
    }
    const int core_key = cpu.socket * topology_.cores_per_socket() + cpu.core;
    const VfSetting effective_vf = core_vf[core_key];
    const bool first_on_core = seen_on_core[core_key] == 0;
    seen_on_core[core_key]++;

    const double base = first_on_core ? (effective_vf == VfSetting::kMax
                                             ? params_.core_active_w_max
                                             : params_.core_active_w_min)
                                      : (effective_vf == VfSetting::kMax
                                             ? params_.smt_active_w_max
                                             : params_.smt_active_w_min);
    const double dynamic = base * ActivityFactor(state);
    result.cores_w += dynamic;
    result.package_w += dynamic;
    if (state == ActivityState::kWorking) {
      result.dram_w += params_.dram_per_working_context_w;
    }
  }

  return result;
}

double PowerModel::TotalWatts(const std::vector<ActivityState>& states,
                              const std::vector<VfSetting>& vf) const {
  return ComponentWatts(states, vf).total();
}

double PowerModel::TotalWatts(const std::vector<ActivityState>& states, VfSetting vf) const {
  const std::vector<VfSetting> uniform(states.size(), vf);
  return TotalWatts(states, uniform);
}

}  // namespace lockin
