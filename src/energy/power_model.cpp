#include "src/energy/power_model.hpp"

#include <algorithm>

namespace lockin {

const char* ActivityStateName(ActivityState state) {
  switch (state) {
    case ActivityState::kInactive:
      return "inactive";
    case ActivityState::kSleeping:
      return "sleeping";
    case ActivityState::kDeepSleep:
      return "deep-sleep";
    case ActivityState::kWorking:
      return "working";
    case ActivityState::kCritical:
      return "critical";
    case ActivityState::kSpinGlobal:
      return "spin-global";
    case ActivityState::kSpinLocal:
      return "spin-local";
    case ActivityState::kSpinPause:
      return "spin-pause";
    case ActivityState::kSpinMbar:
      return "spin-mbar";
    case ActivityState::kSpinDvfsMin:
      return "spin-dvfs-min";
    case ActivityState::kMwait:
      return "mwait";
    case ActivityState::kKernel:
      return "kernel";
  }
  return "unknown";
}

PowerModel::PowerModel(Topology topology, PowerParams params)
    : topology_(std::move(topology)), params_(params) {
  for (int s = 0; s < kActivityStateCount; ++s) {
    const auto state = static_cast<ActivityState>(s);
    factor_lut_[s] = ActivityFactor(state);
    active_lut_[s] = IsContextActive(state);
  }
  const auto& cpus = topology_.cpus();
  core_key_lut_.reserve(cpus.size());
  socket_lut_.reserve(cpus.size());
  for (const CpuInfo& cpu : cpus) {
    core_key_lut_.push_back(cpu.socket * topology_.cores_per_socket() + cpu.core);
    socket_lut_.push_back(cpu.socket);
  }
}

double PowerModel::ActivityFactor(ActivityState state) const {
  switch (state) {
    case ActivityState::kInactive:
    case ActivityState::kSleeping:
    case ActivityState::kDeepSleep:
      return 0.0;
    case ActivityState::kWorking:
      return params_.factor_working;
    case ActivityState::kCritical:
      return params_.factor_critical;
    case ActivityState::kSpinGlobal:
      return params_.factor_spin_global;
    case ActivityState::kSpinLocal:
      return params_.factor_spin_local;
    case ActivityState::kSpinPause:
      return params_.factor_spin_pause;
    case ActivityState::kSpinMbar:
      return params_.factor_spin_mbar;
    case ActivityState::kSpinDvfsMin:
      // The DVFS state's reduction comes from the min-VF core power, not the
      // activity factor; it spins like local spinning otherwise.
      return params_.factor_spin_local;
    case ActivityState::kMwait:
      return params_.factor_mwait;
    case ActivityState::kKernel:
      return params_.factor_kernel;
  }
  return 0.0;
}

// Shared implementation: `vf_of(ctx)` supplies the per-context VF request.
// Both public entry points funnel here so they run the same arithmetic in
// the same order (bit-identical results). Scratch buffers are thread-local
// so the hot uniform-VF path allocates nothing after first use.
template <typename VfOf>
PowerModel::Breakdown PowerModel::ComputeWatts(const std::vector<ActivityState>& states,
                                               const VfOf& vf_of) const {
  // SimMachine recomputes on every context-state change, so this runs
  // millions of times per bench: LUTs replace per-context switch dispatch
  // and the scratch is thread-local, but the arithmetic (values and
  // summation order) is unchanged from the reference formulation above.
  const int contexts = topology_.total_contexts();
  const int n = std::min(contexts, static_cast<int>(core_key_lut_.size()));
  const int ns = static_cast<int>(states.size());

  // Hyper-threads of a core share the *higher* VF point (section 4.2), and
  // an inactive sibling counts as high: lowering one context's VF "will
  // have no effect unless the second hyper-thread has the same or lower VF
  // setting". A core runs at min VF only when every one of its contexts
  // requests min. Keyed by socket * cores_per_socket + core.
  const int cores_total = topology_.total_cores();
  static thread_local std::vector<int> active_contexts_on_core;
  static thread_local std::vector<VfSetting> core_vf;
  static thread_local std::vector<char> socket_active;
  static thread_local std::vector<int> seen_on_core;
  active_contexts_on_core.assign(cores_total, 0);
  core_vf.assign(cores_total, VfSetting::kMin);
  socket_active.assign(topology_.sockets(), 0);
  seen_on_core.assign(cores_total, 0);

  for (int ctx = 0; ctx < n; ++ctx) {
    const ActivityState state = ctx < ns ? states[ctx] : ActivityState::kInactive;
    const int core_key = core_key_lut_[ctx];
    if (vf_of(state, ctx) == VfSetting::kMax) {
      core_vf[core_key] = VfSetting::kMax;  // higher request (or idle) wins
    }
    if (!active_lut_[static_cast<int>(state)]) {
      continue;
    }
    active_contexts_on_core[core_key]++;
    socket_active[socket_lut_[ctx]] = 1;
  }

  Breakdown result;
  result.package_w = params_.idle_package_w;
  result.dram_w = params_.idle_dram_w;

  for (int socket = 0; socket < topology_.sockets(); ++socket) {
    if (socket_active[socket] != 0) {
      // Uncore activation at the socket's max VF among active cores.
      bool any_max = false;
      for (int core = 0; core < topology_.cores_per_socket(); ++core) {
        const int key = socket * topology_.cores_per_socket() + core;
        if (active_contexts_on_core[key] > 0 && core_vf[key] == VfSetting::kMax) {
          any_max = true;
        }
      }
      result.package_w += UncoreWatts(any_max);
    }
  }

  // Per-context dynamic power (ContextWatts is the single source of the
  // formula). The first active context of a core pays the core wake-up
  // power; additional hyper-threads pay the (smaller) SMT power.
  for (int ctx = 0; ctx < n; ++ctx) {
    const ActivityState state = ctx < ns ? states[ctx] : ActivityState::kInactive;
    if (!active_lut_[static_cast<int>(state)]) {
      result.package_w += ContextWatts(state, VfSetting::kMax, false).package_w;
      continue;
    }
    const int core_key = core_key_lut_[ctx];
    const bool first_on_core = seen_on_core[core_key] == 0;
    seen_on_core[core_key]++;

    const ContextPower power = ContextWatts(state, core_vf[core_key], first_on_core);
    result.cores_w += power.cores_w;
    result.package_w += power.package_w;
    result.dram_w += power.dram_w;
  }

  return result;
}

PowerModel::Breakdown PowerModel::ComponentWatts(const std::vector<ActivityState>& states,
                                                 const std::vector<VfSetting>& vf) const {
  return ComputeWatts(states, [&](ActivityState state, int ctx) {
    if (state == ActivityState::kSpinDvfsMin) {
      return VfSetting::kMin;
    }
    return ctx < static_cast<int>(vf.size()) ? vf[ctx] : VfSetting::kMax;
  });
}

PowerModel::Breakdown PowerModel::ComponentWattsUniform(
    const std::vector<ActivityState>& states, VfSetting vf) const {
  return ComputeWatts(states,
                      [&](ActivityState state, int /*ctx*/) { return VfRequest(state, vf); });
}

double PowerModel::TotalWatts(const std::vector<ActivityState>& states,
                              const std::vector<VfSetting>& vf) const {
  return ComponentWatts(states, vf).total();
}

double PowerModel::TotalWatts(const std::vector<ActivityState>& states, VfSetting vf) const {
  const std::vector<VfSetting> uniform(states.size(), vf);
  return TotalWatts(states, uniform);
}

}  // namespace lockin
