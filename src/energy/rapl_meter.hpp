// RAPL energy meter backed by the Linux powercap sysfs interface.
//
// Reads /sys/class/powercap/intel-rapl:* energy_uj counters, the same
// counters the paper uses (section 2: "Recent Intel processors include the
// RAPL interface for accurately measuring energy consumption"). Handles
// counter wraparound via max_energy_range_uj.
#ifndef SRC_ENERGY_RAPL_METER_HPP_
#define SRC_ENERGY_RAPL_METER_HPP_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "src/energy/energy_meter.hpp"

namespace lockin {

class RaplMeter : public EnergyMeter {
 public:
  // True when at least one package RAPL domain is readable on this host.
  static bool Available();

  // True when powercap RAPL nodes exist at all, readable or not. Together
  // with !Available() this distinguishes "no RAPL hardware" from "RAPL
  // present but root-only", so the fallback chain can say why it degraded.
  static bool PowercapPresent();

  RaplMeter();

  void Start() override;
  EnergySample Stop() override;
  std::string Name() const override { return "rapl"; }

  // Number of RAPL domains discovered (for diagnostics).
  std::size_t domain_count() const { return domains_.size(); }

 private:
  struct Domain {
    std::string energy_path;
    std::uint64_t max_range_uj = 0;
    bool is_dram = false;
    std::uint64_t start_uj = 0;
  };

  static std::vector<Domain> DiscoverDomains();
  static std::uint64_t ReadCounter(const std::string& path);

  std::vector<Domain> domains_;
  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace lockin

#endif  // SRC_ENERGY_RAPL_METER_HPP_
