// Analytic power model of the paper's Xeon testbed.
//
// The host running this reproduction has no RAPL interface, so the model
// below substitutes for it (see DESIGN.md section 2). Every constant is
// calibrated against a number reported in the paper:
//
//   * total idle power 55.5 W, split package ~30.5 W / DRAM 25 W (sec 3.1);
//   * activating the first core of a socket costs 13.6 W package power at
//     the max VF setting (6.4 W at min VF), subsequent cores 5.6 W (2.3 W);
//   * max totals: package 132 W, cores 96 W, DRAM 74 W, total 206 W;
//   * busy-wait power at 40 threads ~140 W => spin activity factor ~0.52 of
//     a fully working core (Figure 3);
//   * `pause` spinning draws up to 4% more than plain local spinning,
//     mfence-based pausing up to 7% less than pause (Figure 4);
//   * global spinning draws ~3% less than local spinning (Figure 3);
//   * min-VF spinning is up to 1.7x below max-VF, monitor/mwait ~1.5x below
//     conventional spinning (Figure 5).
//
// The model is deliberately additive (idle + uncore activation + per-core +
// per-extra-hyper-thread + DRAM), which preserves the paper's shapes: the
// knee at one-thread-per-core occupancy, the uncore step when a socket wakes
// up, and the ordering of the waiting techniques.
#ifndef SRC_ENERGY_POWER_MODEL_HPP_
#define SRC_ENERGY_POWER_MODEL_HPP_

#include <vector>

#include "src/energy/activity.hpp"
#include "src/platform/topology.hpp"

namespace lockin {

// Voltage-frequency setting (DVFS). The paper's Xeon scales 1.2-2.8 GHz.
enum class VfSetting {
  kMax,  // 2.8 GHz
  kMin,  // 1.2 GHz
};

// True when the state keeps its hardware context powered (anything but
// inactive / sleeping / deep-sleep). Shared by the power model and the
// simulator's incremental power accounting.
inline bool IsContextActive(ActivityState state) {
  switch (state) {
    case ActivityState::kInactive:
    case ActivityState::kSleeping:
    case ActivityState::kDeepSleep:
      return false;
    default:
      return true;
  }
}

// Calibration constants; defaults reproduce the paper's Xeon (E5-2680 v2).
struct PowerParams {
  double idle_package_w = 30.5;  // both sockets, all cores in idle states
  double idle_dram_w = 25.0;     // DRAM background power

  // Socket "uncore" activation: paid once per socket with >= 1 active core.
  double uncore_active_w_max = 8.0;
  double uncore_active_w_min = 4.1;

  // First hardware context of a core (core wake-up), fully working.
  double core_active_w_max = 5.6;
  double core_active_w_min = 2.3;

  // Second hyper-thread of an already-active core.
  double smt_active_w_max = 1.0;
  double smt_active_w_min = 0.5;

  // Extra DRAM power per context running memory-intensive work.
  double dram_per_working_context_w = 1.225;

  // Kernel housekeeping per sleeping thread (the OS "briefly enables a few
  // cores during the measurements", sec 3.1).
  double sleeping_thread_w = 0.11;

  // Activity factors: fraction of the full working-core dynamic power that
  // each state draws. Calibrated to Figures 3-5 (see header comment).
  double factor_working = 1.0;
  double factor_critical = 0.62;
  double factor_spin_local = 0.52;
  double factor_spin_global = 0.505;  // ~3% below local
  double factor_spin_pause = 0.541;   // ~4% above local
  double factor_spin_mbar = 0.475;    // ~7% below pause, below global too
  double factor_kernel = 0.58;
  double factor_mwait = 0.16;  // => ~1.5x total reduction at 40 threads

  static PowerParams PaperXeon() { return PowerParams{}; }
};

// Per-context VF + activity snapshot -> watts.
class PowerModel {
 public:
  PowerModel(Topology topology, PowerParams params);

  const Topology& topology() const { return topology_; }
  const PowerParams& params() const { return params_; }

  // Power for a machine state: `states[i]` is the activity of hardware
  // context i (in the topology's canonical cpu order), `vf[i]` its DVFS
  // point. Vectors shorter than total_contexts() are padded with kInactive.
  // Note: both hyper-threads of a core share the *higher* of their VF
  // settings (sec 4.2, "both hyper-threads of a physical core share the same
  // VF setting -- the higher of the two").
  double TotalWatts(const std::vector<ActivityState>& states,
                    const std::vector<VfSetting>& vf) const;

  // Convenience: all contexts at the same VF point.
  double TotalWatts(const std::vector<ActivityState>& states,
                    VfSetting vf = VfSetting::kMax) const;

  // Component breakdown used by the Figure 2 reproduction.
  struct Breakdown {
    double package_w = 0;  // includes core power
    double cores_w = 0;
    double dram_w = 0;
    double total() const { return package_w + dram_w; }
  };
  Breakdown ComponentWatts(const std::vector<ActivityState>& states,
                           const std::vector<VfSetting>& vf) const;

  // Allocation-free fast path for the simulator: every context at the same
  // VF point (kSpinDvfsMin still forces its context to min, as above).
  // Bit-identical to ComponentWatts with a uniform vf vector -- both run
  // the same arithmetic in the same order -- but reuses thread-local
  // scratch instead of building per-call vectors, because SimMachine calls
  // this on every context-state change.
  Breakdown ComponentWattsUniform(const std::vector<ActivityState>& states,
                                  VfSetting vf) const;

  // Dynamic activity factor for a state (0 for inactive/sleeping).
  double ActivityFactor(ActivityState state) const;

  // A context's VF request: kSpinDvfsMin spins at min VF, everything else
  // (active or idle) requests the global point. The core resolves to the
  // higher request among its hyper-threads.
  static VfSetting VfRequest(ActivityState state, VfSetting global) {
    return state == ActivityState::kSpinDvfsMin ? VfSetting::kMin : global;
  }

  // One context's power contribution given its core's resolved VF point
  // and whether it is the core's first active context (which pays the core
  // wake-up power; later siblings pay the SMT power). The single source of
  // truth for the per-context formula -- used by the full recompute below
  // and by SimMachine's incremental per-core accounting.
  struct ContextPower {
    double package_w = 0;
    double cores_w = 0;
    double dram_w = 0;
  };
  ContextPower ContextWatts(ActivityState state, VfSetting core_vf,
                            bool first_active_on_core) const {
    ContextPower power;
    if (!IsContextActive(state)) {
      if (state == ActivityState::kSleeping || state == ActivityState::kDeepSleep) {
        power.package_w = params_.sleeping_thread_w;
      }
      return power;
    }
    const double base =
        first_active_on_core
            ? (core_vf == VfSetting::kMax ? params_.core_active_w_max
                                          : params_.core_active_w_min)
            : (core_vf == VfSetting::kMax ? params_.smt_active_w_max
                                          : params_.smt_active_w_min);
    const double dynamic = base * factor_lut_[static_cast<int>(state)];
    power.package_w = dynamic;
    power.cores_w = dynamic;
    if (state == ActivityState::kWorking) {
      power.dram_w = params_.dram_per_working_context_w;
    }
    return power;
  }

  // Uncore activation watts for a socket with >= 1 active core, at the max
  // or min VF tier depending on whether any active core runs at max.
  double UncoreWatts(bool any_core_at_max_vf) const {
    return any_core_at_max_vf ? params_.uncore_active_w_max : params_.uncore_active_w_min;
  }

  double IdleWatts() const { return params_.idle_package_w + params_.idle_dram_w; }

 private:
  template <typename VfOf>
  Breakdown ComputeWatts(const std::vector<ActivityState>& states, const VfOf& vf_of) const;

  Topology topology_;
  PowerParams params_;
  // Hot-path lookup tables (built once in the constructor): the per-state
  // activity factor / active flag (same values ActivityFactor() returns)
  // and each context's socket * cores_per_socket + core key, so the watts
  // loops do no switch dispatch or CpuInfo chasing per context.
  double factor_lut_[kActivityStateCount];
  bool active_lut_[kActivityStateCount];
  std::vector<int> core_key_lut_;
  std::vector<int> socket_lut_;
};

}  // namespace lockin

#endif  // SRC_ENERGY_POWER_MODEL_HPP_
