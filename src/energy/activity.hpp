// Hardware-context activity states.
//
// Section 3.1 of the paper: "once a core is active, the core consumes a
// certain amount of power that cannot be avoided", and the waiting technique
// determines how much. Each state below corresponds to one of the waiting or
// working modes the paper measures (Figures 2-5), and the power model maps a
// vector of these states to watts.
#ifndef SRC_ENERGY_ACTIVITY_HPP_
#define SRC_ENERGY_ACTIVITY_HPP_

namespace lockin {

enum class ActivityState {
  kInactive,     // context idle and OS-idle (low-power C-state)
  kSleeping,     // thread blocked in futex; context released to the OS
  kDeepSleep,    // long futex sleep; context in a deep idle state (sec 4.3)
  kWorking,      // running application code (memory-intensive calibration)
  kCritical,     // running a critical section (compute, cache-resident)
  kSpinGlobal,   // busy-wait with atomic ops on the lock word ("global")
  kSpinLocal,    // busy-wait on a local cached copy ("local")
  kSpinPause,    // local spinning with x86 pause ("local-pause")
  kSpinMbar,     // local spinning with a memory barrier ("local-mbar")
  kSpinDvfsMin,  // local spinning at the minimum voltage-frequency point
  kMwait,        // blocked in monitor/mwait (hardware sleep, context held)
  kKernel,       // executing futex syscall path in the kernel
};

inline constexpr int kActivityStateCount = 12;

// Paper-facing name for reports.
const char* ActivityStateName(ActivityState state);

}  // namespace lockin

#endif  // SRC_ENERGY_ACTIVITY_HPP_
