// Model-based energy meter.
//
// Substitutes for RAPL on hosts without it (see DESIGN.md section 2).
// Threads report their activity transitions to an ActivityRegistry; the
// meter integrates the calibrated PowerModel over the piecewise-constant
// machine state. Integration is exact (event-driven, not sampled): energy
// is accumulated at every state transition, so short events like futex
// sleep/wake flurries are captured.
#ifndef SRC_ENERGY_MODEL_METER_HPP_
#define SRC_ENERGY_MODEL_METER_HPP_

#include <chrono>
#include <memory>
#include <mutex>
#include <vector>

#include "src/energy/energy_meter.hpp"
#include "src/energy/power_model.hpp"

namespace lockin {

// Tracks which activity state each hardware context is in and integrates
// package/DRAM energy over time. Thread-safe; transitions take a mutex
// (acceptable for benchmarking since transitions are orders of magnitude
// rarer than lock operations).
class ActivityRegistry {
 public:
  explicit ActivityRegistry(PowerModel model);

  // Declares that context `ctx` (index into the pinning order) entered
  // `state`. Integrates energy for the elapsed interval first.
  void SetState(int ctx, ActivityState state);

  // Integrated energy since construction or the last ResetEnergy().
  struct Totals {
    double package_joules = 0.0;
    double dram_joules = 0.0;
    double seconds = 0.0;
  };
  Totals Snapshot();

  void ResetEnergy();

  const PowerModel& model() const { return model_; }

 private:
  void AccumulateLocked(std::chrono::steady_clock::time_point now);

  PowerModel model_;
  std::mutex mu_;
  std::vector<ActivityState> states_;
  std::chrono::steady_clock::time_point last_transition_;
  Totals totals_;
};

// EnergyMeter facade over an ActivityRegistry.
class ModelMeter : public EnergyMeter {
 public:
  explicit ModelMeter(std::shared_ptr<ActivityRegistry> registry);

  void Start() override;
  EnergySample Stop() override;
  std::string Name() const override { return "model"; }

 private:
  std::shared_ptr<ActivityRegistry> registry_;
  ActivityRegistry::Totals start_;
};

// RAII helper: sets a context's activity on construction and restores the
// previous scope's state on destruction.
class ScopedActivity {
 public:
  ScopedActivity(ActivityRegistry* registry, int ctx, ActivityState state,
                 ActivityState restore_to)
      : registry_(registry), ctx_(ctx), restore_(restore_to) {
    registry_->SetState(ctx_, state);
  }
  ~ScopedActivity() { registry_->SetState(ctx_, restore_); }

  ScopedActivity(const ScopedActivity&) = delete;
  ScopedActivity& operator=(const ScopedActivity&) = delete;

 private:
  ActivityRegistry* registry_;
  int ctx_;
  ActivityState restore_;
};

// Picks the best available meter: RAPL when readable, the model otherwise.
// `registry` may be null when the caller knows RAPL is available.
std::unique_ptr<EnergyMeter> MakeDefaultMeter(std::shared_ptr<ActivityRegistry> registry);

}  // namespace lockin

#endif  // SRC_ENERGY_MODEL_METER_HPP_
