// Umbrella header for the lockin++ library.
//
// Pulls in the public lock API, every algorithm, the energy measurement
// stack and the platform helpers. Benchmark/simulator headers are not
// included here; include src/sim/workload.hpp explicitly for those.
#ifndef SRC_LOCKIN_HPP_
#define SRC_LOCKIN_HPP_

#include "src/energy/energy_meter.hpp"
#include "src/energy/model_meter.hpp"
#include "src/energy/power_model.hpp"
#include "src/energy/rapl_meter.hpp"
#include "src/futex/futex.hpp"
#include "src/locks/backoff.hpp"
#include "src/locks/clh.hpp"
#include "src/locks/condvar.hpp"
#include "src/locks/futex_lock.hpp"
#include "src/locks/lock_api.hpp"
#include "src/locks/lock_registry.hpp"
#include "src/locks/mcs.hpp"
#include "src/locks/mutexee.hpp"
#include "src/locks/pthread_adapter.hpp"
#include "src/locks/rwlock.hpp"
#include "src/locks/spinlocks.hpp"
#include "src/locks/tuner.hpp"
#include "src/platform/cacheline.hpp"
#include "src/platform/cycles.hpp"
#include "src/platform/rng.hpp"
#include "src/platform/spin_hint.hpp"
#include "src/platform/topology.hpp"
#include "src/stats/histogram.hpp"
#include "src/stats/summary.hpp"
#include "src/stats/table.hpp"

#endif  // SRC_LOCKIN_HPP_
